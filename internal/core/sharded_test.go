package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"vqf/internal/workload"
)

// TestShardPartition checks the shard counting sort: every key lands in its
// shard's [bounds[s], bounds[s+1]) range, and the index-carrying variant
// records each key's original position.
func TestShardPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []uint{0, 1, 3, 8} {
		hs := make([]uint64, 5000)
		for i := range hs {
			hs[i] = rng.Uint64()
		}
		sorted, bounds := shardPartition(hs, bits)
		if len(sorted) != len(hs) || len(bounds) != (1<<bits)+1 {
			t.Fatalf("bits %d: bad partition shape", bits)
		}
		for s := 0; s < 1<<bits; s++ {
			for _, h := range sorted[bounds[s]:bounds[s+1]] {
				if shardOf(h, bits) != uint64(s) {
					t.Fatalf("bits %d: key %#x filed under shard %d", bits, h, s)
				}
			}
		}
		sortedIdx, idx, boundsIdx := shardPartitionIdx(hs, bits)
		for i := range bounds {
			if bounds[i] != boundsIdx[i] {
				t.Fatalf("bits %d: bounds disagree between variants", bits)
			}
		}
		for j, h := range sortedIdx {
			if hs[idx[j]] != h {
				t.Fatalf("bits %d: idx[%d] does not point at its key", bits, j)
			}
		}
	}
}

// TestShardedBasic runs single-key operations through several shard counts
// and checks the aggregate gauges against the per-shard ones.
func TestShardedBasic(t *testing.T) {
	for _, nshards := range []int{1, 4, 5, 8} {
		f := NewSharded8(1<<13, nshards, Options{})
		want := 1 << shardBitsFor(nshards)
		if f.NumShards() != want {
			t.Fatalf("nshards %d: got %d shards, want %d", nshards, f.NumShards(), want)
		}
		if f.Capacity() < 1<<13 {
			t.Fatalf("nshards %d: capacity %d below requested", nshards, f.Capacity())
		}
		keys := workload.NewStream(uint64(7 + nshards)).Keys(4000)
		for _, h := range keys {
			if !f.Insert(h) {
				t.Fatalf("nshards %d: insert failed at low load", nshards)
			}
		}
		for _, h := range keys {
			if !f.Contains(h) {
				t.Fatalf("nshards %d: false negative", nshards)
			}
		}
		if f.Count() != uint64(len(keys)) {
			t.Fatalf("nshards %d: count %d, want %d", nshards, f.Count(), len(keys))
		}
		var sum uint64
		for _, c := range f.ShardCounts() {
			sum += c
		}
		if sum != f.Count() {
			t.Fatalf("nshards %d: shard counts sum %d != count %d", nshards, sum, f.Count())
		}
		if occs := f.BlockOccupancies(); uint64(len(occs))*uint64(f.SlotsPerBlock()) != f.Capacity() {
			t.Fatalf("nshards %d: occupancy vector does not cover capacity", nshards)
		}
		for _, h := range keys[:100] {
			if !f.Remove(h) {
				t.Fatalf("nshards %d: remove failed", nshards)
			}
		}
		if f.Count() != uint64(len(keys)-100) {
			t.Fatalf("nshards %d: count after removes %d", nshards, f.Count())
		}
	}
}

// TestShardedBalance checks that top-bit shard selection spreads uniform
// keys evenly: no shard more than 2x the mean.
func TestShardedBalance(t *testing.T) {
	f := NewSharded16(1<<14, 8, Options{})
	keys := workload.NewStream(42).Keys(8000)
	for _, h := range keys {
		f.Insert(h)
	}
	mean := float64(len(keys)) / float64(f.NumShards())
	for s, c := range f.ShardCounts() {
		if float64(c) > 2*mean || float64(c) < mean/2 {
			t.Fatalf("shard %d holds %d of %d keys (mean %.0f)", s, c, len(keys), mean)
		}
	}
}

// shardedBatchRun drives the batch API against a single-key reference on the
// same key set and checks the results agree. gomax > 0 temporarily raises
// GOMAXPROCS so the shard-disjoint worker pool engages even on small hosts.
func shardedBatchRun(t *testing.T, nshards, nkeys, gomax int) {
	t.Helper()
	if gomax > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gomax))
	}
	f := NewSharded8(uint64(nkeys)*2, nshards, Options{})
	ref := NewSharded8(uint64(nkeys)*2, nshards, Options{})
	keys := workload.NewStream(uint64(1000 + nkeys)).Keys(nkeys)
	ins := f.InsertBatch(keys)
	refIns := 0
	for _, h := range keys {
		if ref.Insert(h) {
			refIns++
		}
	}
	if ins != refIns {
		t.Fatalf("InsertBatch inserted %d, reference %d", ins, refIns)
	}
	if f.Count() != ref.Count() {
		t.Fatalf("count %d after batch, reference %d", f.Count(), ref.Count())
	}
	// Mix present and absent keys, verify order-preserving scatter.
	probe := append(append([]uint64{}, keys...), workload.NewStream(77).Keys(nkeys)...)
	got := f.ContainsBatch(probe, nil)
	for i, h := range probe {
		if got[i] != ref.Contains(h) {
			t.Fatalf("ContainsBatch[%d] = %v, reference %v", i, got[i], !got[i])
		}
	}
	rem := f.RemoveBatch(keys)
	refRem := 0
	for _, h := range keys {
		if ref.Remove(h) {
			refRem++
		}
	}
	if rem != refRem {
		t.Fatalf("RemoveBatch removed %d, reference %d", rem, refRem)
	}
	if f.Count() != ref.Count() {
		t.Fatalf("count %d after batch removes, reference %d", f.Count(), ref.Count())
	}
}

func TestShardedBatchSmall(t *testing.T)    { shardedBatchRun(t, 4, 1000, 0) }               // w==1 path
func TestShardedBatchParallel(t *testing.T) { shardedBatchRun(t, 4, 4*minParallelBatch, 4) } // pool path
func TestShardedBatchOneShard(t *testing.T) { shardedBatchRun(t, 1, 2000, 0) }               // delegation path

// TestSharded16Batch covers the 16-bit mirror of the batch plumbing.
func TestSharded16Batch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	n := 2 * minParallelBatch
	f := NewSharded16(uint64(n)*2, 4, Options{})
	keys := workload.NewStream(5).Keys(n)
	if ins := f.InsertBatch(keys); ins != n {
		t.Fatalf("InsertBatch inserted %d of %d at low load", ins, n)
	}
	out := f.ContainsBatch(keys, nil)
	for i := range out {
		if !out[i] {
			t.Fatalf("false negative at %d after batch insert", i)
		}
	}
	if rem := f.RemoveBatch(keys); rem != n {
		t.Fatalf("RemoveBatch removed %d of %d", rem, n)
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after removing everything", f.Count())
	}
}

// TestShardedStatsAggregation checks that Stats sums the shard-private
// counters: inserts, lookups, and batch totals must equal the operations
// issued regardless of which shard served them.
func TestShardedStatsAggregation(t *testing.T) {
	f := NewSharded8(1<<12, 8, Options{})
	keys := workload.NewStream(9).Keys(1000)
	for _, h := range keys[:500] {
		f.Insert(h)
	}
	f.InsertBatch(keys[500:])
	for _, h := range keys[:200] {
		f.Contains(h)
	}
	f.ContainsBatch(keys, nil)
	for _, h := range keys[:50] {
		f.Remove(h)
	}
	st := f.Stats()
	if st.Inserts != 1000 {
		t.Fatalf("Inserts = %d, want 1000", st.Inserts)
	}
	if st.Lookups != 200+1000 {
		t.Fatalf("Lookups = %d, want 1200", st.Lookups)
	}
	if st.Removes != 50 {
		t.Fatalf("Removes = %d, want 50", st.Removes)
	}
	if st.BatchKeys != 500+1000 {
		t.Fatalf("BatchKeys = %d, want 1500", st.BatchKeys)
	}
	if st.BatchOps == 0 {
		t.Fatal("BatchOps not counted")
	}
}

// TestCFilterSerializeRoundTrip round-trips the concurrent filters through
// the sequential stream format, including cross-form loads in both
// directions (locked <-> plain metadata conversion).
func TestCFilterSerializeRoundTrip(t *testing.T) {
	f := NewCFilter8(1<<12, Options{})
	keys := workload.NewStream(21).Keys(3000)
	for _, h := range keys {
		if !f.Insert(h) {
			t.Fatal("insert failed at low load")
		}
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	raw := append([]byte{}, buf.Bytes()...)

	g, err := ReadCFilter8(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Fatalf("count mismatch: %d vs %d", g.Count(), f.Count())
	}
	for _, h := range keys {
		if !g.Contains(h) {
			t.Fatal("false negative after concurrent round trip")
		}
	}
	if !g.Remove(keys[0]) || !g.Insert(keys[0]) {
		t.Fatal("deserialized concurrent filter not operational")
	}

	// Cross-form: the same stream loads as a sequential filter...
	sf, err := ReadFilter8(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range keys {
		if !sf.Contains(h) {
			t.Fatal("false negative loading concurrent stream as sequential")
		}
	}
	// ...and a sequential writer's stream loads as a concurrent filter.
	var sbuf bytes.Buffer
	if _, err := sf.WriteTo(&sbuf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCFilter8(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range keys {
		if !g2.Contains(h) {
			t.Fatal("false negative loading sequential stream as concurrent")
		}
	}
}

// TestCFilterSerializeFullBlock serializes filters holding completely full
// blocks, exercising the implicit-terminator top-bit conversion (79 stored
// terminators for Block8, 35 for Block16) in both directions.
func TestCFilterSerializeFullBlock(t *testing.T) {
	fullBlocks := func(t *testing.T, occs []uint, slots uint) {
		t.Helper()
		for _, occ := range occs {
			if occ == slots {
				return
			}
		}
		t.Fatalf("no full block after insert-to-failure (occupancies %v)", occs)
	}
	t.Run("cfilter8", func(t *testing.T) {
		f := NewCFilter8(48, Options{}) // smallest filter: insert until a block fills
		rng := rand.New(rand.NewSource(31))
		var keys []uint64
		for {
			h := rng.Uint64()
			if !f.Insert(h) {
				break
			}
			keys = append(keys, h)
		}
		fullBlocks(t, f.BlockOccupancies(), 48)
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		g, err := ReadCFilter8(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.Count() != f.Count() {
			t.Fatalf("count mismatch: %d vs %d", g.Count(), f.Count())
		}
		for _, h := range keys {
			if !g.Contains(h) {
				t.Fatal("false negative on full-block round trip")
			}
		}
		if !g.Remove(keys[len(keys)-1]) {
			t.Fatal("remove failed on deserialized full block")
		}
	})
	t.Run("cfilter16", func(t *testing.T) {
		f := NewCFilter16(28, Options{})
		rng := rand.New(rand.NewSource(32))
		var keys []uint64
		for {
			h := rng.Uint64()
			if !f.Insert(h) {
				break
			}
			keys = append(keys, h)
		}
		fullBlocks(t, f.BlockOccupancies(), 28)
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		g, err := ReadCFilter16(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range keys {
			if !g.Contains(h) {
				t.Fatal("false negative on full-block round trip")
			}
		}
	})
}

// TestCFilterSerializeLockedError checks that WriteTo refuses a filter with
// a held block lock instead of persisting a torn stream.
func TestCFilterSerializeLockedError(t *testing.T) {
	f := NewCFilter8(1<<10, Options{})
	f.Insert(12345)
	f.blocks[0].Lock()
	defer f.blocks[0].Unlock()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo succeeded on a filter with a held lock")
	}
}

// TestShardedSerializeRoundTrip round-trips both sharded geometries through
// the VQSH sub-header format.
func TestShardedSerializeRoundTrip(t *testing.T) {
	f8 := NewSharded8(1<<13, 4, Options{})
	keys := workload.NewStream(51).Keys(4000)
	for _, h := range keys {
		f8.Insert(h)
	}
	var buf bytes.Buffer
	n, err := f8.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	g8, g16, err := ReadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g16 != nil || g8 == nil {
		t.Fatal("ReadSharded dispatched to the wrong geometry")
	}
	if g8.NumShards() != f8.NumShards() || g8.Count() != f8.Count() {
		t.Fatalf("shape mismatch: %d/%d shards, %d/%d keys",
			g8.NumShards(), f8.NumShards(), g8.Count(), f8.Count())
	}
	for _, h := range keys {
		if !g8.Contains(h) {
			t.Fatal("false negative after sharded round trip")
		}
	}
	if !g8.Remove(keys[0]) || !g8.Insert(keys[0]) {
		t.Fatal("deserialized sharded filter not operational")
	}

	f16 := NewSharded16(1<<12, 8, Options{})
	for _, h := range keys[:2000] {
		f16.Insert(h)
	}
	buf.Reset()
	if _, err := f16.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h8, h16, err := ReadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h8 != nil || h16 == nil {
		t.Fatal("ReadSharded dispatched to the wrong geometry")
	}
	for _, h := range keys[:2000] {
		if !h16.Contains(h) {
			t.Fatal("false negative after sharded16 round trip")
		}
	}
}

// TestShardedSerializeBadHeader checks sub-header validation failures.
func TestShardedSerializeBadHeader(t *testing.T) {
	f := NewSharded8(1<<10, 2, Options{})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, mut := range map[string]func(b []byte){
		"magic":    func(b []byte) { b[0] ^= 0xff },
		"version":  func(b []byte) { b[4] = 99 },
		"geometry": func(b []byte) { b[6] = 7 },
		"shards":   func(b []byte) { b[8] = 3 }, // not a power of two
	} {
		bad := append([]byte{}, good...)
		mut(bad)
		if _, _, err := ReadSharded(bytes.NewReader(bad)); err == nil {
			t.Fatalf("ReadSharded accepted a corrupted %s field", name)
		}
	}
}

// TestShardedChurnRace is the sharded -race churn check: writers insert and
// remove churn keys (each writer biased to a distinct shard's key range by
// construction of its stream), while readers run cross-shard single-key and
// batch lookups over a resident set that is never removed.
func TestShardedChurnRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	f := NewSharded8(1<<12, 4, Options{})
	const residents = 800
	const writers = 4
	const churnOps = 1500
	res := workload.NewStream(61).Keys(residents)
	for _, h := range res {
		if !f.Insert(h) {
			t.Fatal("resident insert failed at low load")
		}
	}
	errs := make(chan string, writers+2)
	var writersWG, readersWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(id int) {
			defer writersWG.Done()
			// Bias this writer's keys to one shard: force the top two hash
			// bits so the writer churns mostly inside "its" shard.
			churn := workload.NewStream(uint64(71 + id)).Keys(churnOps)
			top := uint64(id) << 62
			for _, h := range churn {
				h = (h &^ (uint64(3) << 62)) | top
				if f.Insert(h) {
					f.Remove(h)
				}
			}
		}(w)
	}
	readersWG.Add(2)
	go func() {
		defer readersWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, h := range res {
				if !f.Contains(h) {
					errs <- "resident lost under sharded churn"
					return
				}
			}
		}
	}()
	go func() {
		defer readersWG.Done()
		dst := make([]bool, residents)
		for {
			select {
			case <-done:
				return
			default:
			}
			out := f.ContainsBatch(res, dst)
			for i := range out {
				if !out[i] {
					errs <- "resident lost in sharded batch lookup"
					return
				}
			}
		}
	}()
	writersWG.Wait()
	close(done)
	readersWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	for _, h := range res {
		if !f.Contains(h) {
			t.Fatal("resident lost after churn settled")
		}
	}
}
