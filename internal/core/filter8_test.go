package core

import (
	"math/rand"
	"testing"

	"vqf/internal/minifilter"
)

func TestBlocksFor(t *testing.T) {
	cases := []struct {
		nslots, per, want uint64
	}{
		{0, 48, 2},
		{1, 48, 2},
		{48, 48, 2},
		{96, 48, 2},
		{97, 48, 4},
		{48 * 1024, 48, 1024},
		{48*1024 + 1, 48, 2048},
		{28 * 8, 28, 8},
	}
	for _, c := range cases {
		if got := blocksFor(c.nslots, c.per); got != c.want {
			t.Errorf("blocksFor(%d,%d) = %d, want %d", c.nslots, c.per, got, c.want)
		}
	}
}

func TestSplit8Ranges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const mask = 1<<20 - 1
	for i := 0; i < 100000; i++ {
		h := rng.Uint64()
		b1, bucket, _, tag := split8(h, mask)
		if b1 > mask {
			t.Fatalf("b1 out of range: %d", b1)
		}
		if bucket >= minifilter.B8Buckets {
			t.Fatalf("bucket out of range: %d", bucket)
		}
		if tag >= minifilter.B8Buckets<<8 {
			t.Fatalf("tag out of range: %d", tag)
		}
	}
}

func TestSplit16Ranges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const mask = 1<<16 - 1
	for i := 0; i < 100000; i++ {
		h := rng.Uint64()
		b1, bucket, _, tag := split16(h, mask)
		if b1 > mask {
			t.Fatalf("b1 out of range: %d", b1)
		}
		if bucket >= minifilter.B16Buckets {
			t.Fatalf("bucket out of range: %d", bucket)
		}
		if tag >= minifilter.B16Buckets<<16 {
			t.Fatalf("tag out of range: %d", tag)
		}
	}
}

// fillTo inserts deterministic pseudo-random hashes until the filter holds
// want items; it fails the test if an insert fails first.
func fillTo(t *testing.T, f *Filter8, want uint64, seed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, want)
	for uint64(len(keys)) < want {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at %d/%d items (LF %.4f)", len(keys), want, f.LoadFactor())
		}
		keys = append(keys, h)
	}
	return keys
}

func TestFilter8NoFalseNegatives(t *testing.T) {
	f := NewFilter8(1<<16, Options{})
	n := f.Capacity() * 90 / 100
	keys := fillTo(t, f, n, 3)
	if f.Count() != n {
		t.Fatalf("Count = %d, want %d", f.Count(), n)
	}
	for i, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("false negative for key %d of %d", i, len(keys))
		}
	}
}

func TestFilter8FalsePositiveRate(t *testing.T) {
	f := NewFilter8(1<<16, Options{})
	fillTo(t, f, f.Capacity()*90/100, 4)
	// Analytic bound at 90% of capacity: ε ≤ 2·(s/b)·2⁻⁸ scaled by occupancy.
	// Use the full-filter bound 2·(48/80)/256 ≈ 0.0047 and allow 1.5× slack.
	rng := rand.New(rand.NewSource(5))
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.0047*1.5 {
		t.Errorf("false-positive rate %.5f exceeds bound", rate)
	}
	if rate == 0 {
		t.Error("false-positive rate exactly 0 over 200k probes is implausible")
	}
}

func TestFilter8ReachesHighLoadFactor(t *testing.T) {
	// With the shortcut optimization the paper reports a 93.56% max load
	// factor; without it, 94.40%. Small filters have more variance, so
	// accept anything above 91% / 92%.
	for _, tc := range []struct {
		name    string
		opts    Options
		minLoad float64
	}{
		{"shortcut", Options{}, 0.91},
		{"no-shortcut", Options{NoShortcut: true}, 0.92},
		{"independent-hash", Options{NoShortcut: true, IndependentHash: true}, 0.92},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFilter8(1<<16, tc.opts)
			rng := rand.New(rand.NewSource(6))
			for f.Insert(rng.Uint64()) {
			}
			if lf := f.LoadFactor(); lf < tc.minLoad {
				t.Errorf("max load factor %.4f below %.2f", lf, tc.minLoad)
			}
		})
	}
}

func TestFilter8HighShortcutThresholdHurtsLoadFactor(t *testing.T) {
	// Paper §6.2: raising the shortcut threshold to 95.83% (46/48 slots)
	// sharply reduces the max load factor (≈ 65% at the paper's 5.6M-block
	// scale; the collapse is milder at this test's 2K-block scale but must
	// still be clearly below the default configuration's ≈ 93%).
	f := NewFilter8(1<<16, Options{ShortcutThreshold: 46})
	rng := rand.New(rand.NewSource(7))
	for f.Insert(rng.Uint64()) {
	}
	lf := f.LoadFactor()
	if lf > 0.905 {
		t.Errorf("max load factor %.4f with threshold 46; expected a collapse below the default's", lf)
	}
	if lf < 0.50 {
		t.Errorf("max load factor %.4f implausibly low", lf)
	}
}

func TestFilter8RemoveRestoresState(t *testing.T) {
	f := NewFilter8(1<<14, Options{})
	keys := fillTo(t, f, f.Capacity()*80/100, 8)
	half := keys[:len(keys)/2]
	for _, h := range half {
		if !f.Remove(h) {
			t.Fatalf("remove of inserted key failed")
		}
	}
	if f.Count() != uint64(len(keys)-len(half)) {
		t.Fatalf("Count = %d after removes", f.Count())
	}
	// All remaining keys still present.
	for _, h := range keys[len(half):] {
		if !f.Contains(h) {
			t.Fatal("false negative after unrelated removes")
		}
	}
	// Most removed keys absent (a small fraction may remain as false
	// positives against surviving fingerprints).
	still := 0
	for _, h := range half {
		if f.Contains(h) {
			still++
		}
	}
	if frac := float64(still) / float64(len(half)); frac > 0.05 {
		t.Errorf("%.3f of removed keys still report present", frac)
	}
}

func TestFilter8RemoveAbsentKey(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	fillTo(t, f, 100, 9)
	rng := rand.New(rand.NewSource(10))
	removed := 0
	for i := 0; i < 10000; i++ {
		if f.Remove(rng.Uint64()) {
			removed++
		}
	}
	// Removing random (uninserted) keys should almost always fail; the rare
	// success is the documented fingerprint-collision hazard.
	if removed > 20 {
		t.Errorf("%d/10000 removals of absent keys succeeded", removed)
	}
}

func TestFilter8DuplicateInsertsAreMultiset(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	const h = 0xdeadbeefcafef00d
	for i := 0; i < 3; i++ {
		if !f.Insert(h) {
			t.Fatal("duplicate insert failed")
		}
	}
	if f.Count() != 3 {
		t.Fatalf("Count = %d, want 3", f.Count())
	}
	for i := 0; i < 3; i++ {
		if !f.Contains(h) {
			t.Fatalf("key absent with %d copies left", 3-i)
		}
		if !f.Remove(h) {
			t.Fatal("remove failed")
		}
	}
	if f.Contains(h) {
		t.Error("key present after removing all copies")
	}
	if f.Remove(h) {
		t.Error("remove succeeded with zero copies")
	}
}

func TestFilter8GenericEquivalence(t *testing.T) {
	fast := NewFilter8(1<<12, Options{})
	slow := NewFilter8(1<<12, Options{Generic: true})
	rng := rand.New(rand.NewSource(11))
	var keys []uint64
	for step := 0; step < 30000; step++ {
		switch rng.Intn(3) {
		case 0:
			h := rng.Uint64()
			a, b := fast.Insert(h), slow.Insert(h)
			if a != b {
				t.Fatalf("step %d: insert fast=%v slow=%v", step, a, b)
			}
			if a {
				keys = append(keys, h)
			}
		case 1:
			if len(keys) == 0 {
				continue
			}
			i := rng.Intn(len(keys))
			h := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			a, b := fast.Remove(h), slow.Remove(h)
			if a != b {
				t.Fatalf("step %d: remove fast=%v slow=%v", step, a, b)
			}
		case 2:
			h := rng.Uint64()
			if a, b := fast.Contains(h), slow.Contains(h); a != b {
				t.Fatalf("step %d: contains fast=%v slow=%v", step, a, b)
			}
		}
		if fast.Count() != slow.Count() {
			t.Fatalf("step %d: counts diverged", step)
		}
	}
}

func TestFilter8PowerOfTwoChoicesBalance(t *testing.T) {
	// At 90% load no block should be full when two choices are available,
	// and the occupancy distribution should be tight around the mean.
	f := NewFilter8(1<<16, Options{NoShortcut: true})
	fillTo(t, f, f.Capacity()*90/100, 12)
	occs := f.BlockOccupancies()
	mean := 0.9 * minifilter.B8Slots
	low, high := 0, 0
	for _, o := range occs {
		if float64(o) < mean-12 {
			low++
		}
		if o == minifilter.B8Slots {
			high++
		}
	}
	if frac := float64(high) / float64(len(occs)); frac > 0.02 {
		t.Errorf("%.4f of blocks full at 90%% load", frac)
	}
	if frac := float64(low) / float64(len(occs)); frac > 0.02 {
		t.Errorf("%.4f of blocks badly underfilled at 90%% load", frac)
	}
}

func TestFilter8CapacityAndSize(t *testing.T) {
	f := NewFilter8(1<<16, Options{})
	if f.Capacity() < 1<<16 {
		t.Errorf("Capacity %d below requested", f.Capacity())
	}
	if f.SizeBytes() != f.NumBlocks()*64 {
		t.Errorf("SizeBytes inconsistent with block count")
	}
	if f.LoadFactor() != 0 {
		t.Errorf("fresh filter load factor %f", f.LoadFactor())
	}
}
