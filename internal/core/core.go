// Package core implements the vector quotient filter (VQF) of Pandey et al.,
// SIGMOD 2021: an approximate-membership data structure that hashes items to
// two cache-line-sized mini-filter blocks with power-of-two-choices placement.
// Items are never relocated after insertion, so every operation touches at
// most two cache lines and modifies at most one, at any load factor.
//
// Four filter types are provided: Filter8 and Filter16 (single-threaded,
// ε ≈ 2⁻⁸ and ε ≈ 2⁻¹⁶), and CFilter8 and CFilter16 (thread-safe via the
// per-block lock bit of paper §6.3).
//
// All filters consume pre-hashed 64-bit keys. The bits of a key hash h are
// used as: bucket index (low 16 bits, range-reduced), fingerprint (next 8 or
// 16 bits), and primary block index (bits above those). The secondary block
// is derived with the xor trick b2 = b1 ⊕ (tag·Murmur3Mul) over a
// power-of-two block count, which makes the mapping an involution so that a
// delete can find an item's partner block from either side (§3.4).
package core

import (
	"math/bits"

	"vqf/internal/hashing"
	"vqf/internal/minifilter"
)

// Options configure a filter's insertion policy. The zero value enables the
// paper's recommended configuration: shortcut optimization at the 75%
// threshold, xor-linked block pair, SWAR block operations.
type Options struct {
	// NoShortcut disables the §6.2 shortcut optimization (always inspect
	// both candidate blocks and pick the emptier).
	NoShortcut bool

	// ShortcutThreshold is the occupancy (in slots) at or above which the
	// shortcut is abandoned and both blocks are inspected. Zero means the
	// geometry default: the paper's 75% (36/48) for 8-bit fingerprints, and
	// 64% (18/28) for 16-bit fingerprints — the smaller blocks leave only
	// seven slots of two-choice headroom above 75%, which measurably lowers
	// the achievable load factor at scale. Raising the threshold reduces the
	// maximum load factor sharply (§6.2).
	ShortcutThreshold uint

	// IndependentHash derives the secondary block from an independent hash
	// of the key instead of the xor trick. This removes the xor trick's
	// size-dependent failure probability but makes deletion unsafe (§3.4);
	// Remove must not be used on such a filter.
	IndependentHash bool

	// Generic routes all block operations through loop-based scalar
	// implementations instead of broadword/SWAR ones. This is the ablation
	// baseline corresponding to the paper's §7.7 AVX-512-vs-AVX2 experiment.
	Generic bool
}

func (o Options) threshold(slots, def uint) uint {
	t := o.ShortcutThreshold
	if t == 0 {
		t = def
	}
	if t > slots {
		t = slots // a threshold beyond capacity would let the shortcut path hit a full block
	}
	return t
}

// Geometry-default shortcut thresholds (see Options.ShortcutThreshold).
const (
	defThreshold8  = 36 // 75% of 48
	defThreshold16 = 18 // 64% of 28
)

// blocksFor returns the power-of-two number of blocks needed for nslots slots
// of capacity with slotsPerBlock slots each.
func blocksFor(nslots uint64, slotsPerBlock uint64) uint64 {
	if nslots == 0 {
		nslots = 1
	}
	need := (nslots + slotsPerBlock - 1) / slotsPerBlock
	k := uint64(1) << bits.Len64(need-1)
	if k < 2 {
		k = 2 // two-choice placement needs at least two blocks
	}
	return k
}

// split8 decomposes a 64-bit key hash for the 8-bit-fingerprint geometry.
func split8(h uint64, mask uint64) (b1 uint64, bucket uint, fp byte, tag uint64) {
	bucket = uint(uint32(h&0xffff) * minifilter.B8Buckets >> 16)
	fp = byte(h >> 16)
	b1 = (h >> 24) & mask
	// The tag feeding the xor trick is the full mini-filter hash
	// (bucket, fingerprint): items indistinguishable inside a block must map
	// to the same partner block.
	tag = uint64(bucket)<<8 | uint64(fp)
	return
}

// split16 decomposes a 64-bit key hash for the 16-bit-fingerprint geometry.
func split16(h uint64, mask uint64) (b1 uint64, bucket uint, fp uint16, tag uint64) {
	bucket = uint(uint32(h&0xffff) * minifilter.B16Buckets >> 16)
	fp = uint16(h >> 16)
	b1 = (h >> 32) & mask
	tag = uint64(bucket)<<16 | uint64(fp)
	return
}

// secondary returns the partner block index for (b1, tag) under opts.
func secondary(h, b1, tag, mask uint64, independent bool) uint64 {
	if independent {
		return hashing.Mix64(h) & mask
	}
	return hashing.AltIndex(b1, tag, mask)
}
