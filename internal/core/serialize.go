package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vqf/internal/minifilter"
)

// Binary serialization for the single-threaded filters. The format is a
// little-endian header (magic, version, geometry, options, count) followed by
// the raw block array. Filters can be built offline and shipped alongside
// the data they summarize — the way storage systems persist SSTable filters.

const (
	magic8         = 0x31465156 // "VQF1"
	magic16        = 0x32465156 // "VQF2"
	magicKV        = 0x4b465156 // "VQFK"
	serialVersion  = 1
	headerBytes    = 4 + 2 + 2 + 8 + 8 + 8 // magic, version, flags, blocks, count, reserved
	flagNoShortcut = 1 << 0
	flagIndepHash  = 1 << 1

	// Serialized bytes per block for each stream type: the 64-byte block,
	// plus the parallel value bytes for the KV filter.
	blockBytes   = 64
	kvBlockBytes = 64 + minifilter.B8Slots
)

// ErrBadFormat is returned when deserializing data that is not a filter of
// the expected type and version.
var ErrBadFormat = errors.New("core: malformed filter serialization")

func writeHeader(w io.Writer, magic uint32, nblocks, count uint64, opts Options) error {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint16(hdr[4:], serialVersion)
	var flags uint16
	if opts.NoShortcut {
		flags |= flagNoShortcut
	}
	if opts.IndependentHash {
		flags |= flagIndepHash
	}
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], nblocks)
	binary.LittleEndian.PutUint64(hdr[16:], count)
	_, err := w.Write(hdr[:])
	return err
}

// remainingSize returns the number of bytes known to remain in r, or -1
// when r's length cannot be determined cheaply. bytes.Reader, bytes.Buffer
// and strings.Reader report via Len; files and other seekable readers via
// Seek. The hint lets readers reject a forged header whose claimed block
// count exceeds the input before allocating anything for it.
func remainingSize(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len())
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

func readHeader(r io.Reader, wantMagic uint32, bytesPerBlock, slotsPerBlock uint64) (nblocks, count uint64, opts Options, err error) {
	var hdr [headerBytes]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, opts, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != wantMagic {
		return 0, 0, opts, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != serialVersion {
		return 0, 0, opts, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:])
	opts.NoShortcut = flags&flagNoShortcut != 0
	opts.IndependentHash = flags&flagIndepHash != 0
	nblocks = binary.LittleEndian.Uint64(hdr[8:])
	count = binary.LittleEndian.Uint64(hdr[16:])
	if nblocks < 2 || nblocks&(nblocks-1) != 0 || nblocks > 1<<40 {
		return 0, 0, opts, fmt.Errorf("%w: block count %d not a power of two >= 2", ErrBadFormat, nblocks)
	}
	// A count no block array of this size could hold is a forged header;
	// reject before any allocation (nblocks ≤ 2^40 and slotsPerBlock ≤ 48, so
	// the product cannot overflow).
	if maxCount := nblocks * slotsPerBlock; count > maxCount {
		return 0, 0, opts, fmt.Errorf("%w: count %d exceeds capacity %d of %d blocks",
			ErrBadFormat, count, maxCount, nblocks)
	}
	// With a known input length, a header claiming more blocks than the
	// remaining bytes can hold is rejected up front (nblocks ≤ 2^40 and
	// bytesPerBlock ≤ 112, so the product cannot overflow).
	if hint := remainingSize(r); hint >= 0 && nblocks*bytesPerBlock > uint64(hint) {
		return 0, 0, opts, fmt.Errorf("%w: header claims %d blocks (%d bytes) but only %d bytes remain",
			ErrBadFormat, nblocks, nblocks*bytesPerBlock, hint)
	}
	return nblocks, count, opts, nil
}

// WriteTo serializes the filter. It implements io.WriterTo.
func (f *Filter8) WriteTo(w io.Writer) (int64, error) {
	if err := writeHeader(w, magic8, uint64(len(f.blocks)), f.count, f.opts); err != nil {
		return 0, err
	}
	n := int64(headerBytes)
	buf := make([]byte, 64)
	for i := range f.blocks {
		b := &f.blocks[i]
		binary.LittleEndian.PutUint64(buf[0:], b.MetaLo)
		binary.LittleEndian.PutUint64(buf[8:], b.MetaHi)
		// Word-native lanes are little-endian within each word, so one
		// PutUint64 per word emits the same byte stream as the historical
		// byte-array layout: the on-disk format is unchanged.
		for j, word := range b.Fps {
			binary.LittleEndian.PutUint64(buf[16+8*j:], word)
		}
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadFilter8 deserializes a Filter8 written by WriteTo.
func ReadFilter8(r io.Reader) (*Filter8, error) {
	return readFilter8(r, 0)
}

// ReadFilter8Sized deserializes a Filter8 whose geometry is known in advance
// (e.g. an elastic-cascade level derived from the cascade config): the
// stream's block count must equal the geometry NewFilter8(wantSlots, ...)
// would build, rejecting inconsistent streams before any block allocation.
func ReadFilter8Sized(r io.Reader, wantSlots uint64) (*Filter8, error) {
	return readFilter8(r, blocksFor(wantSlots, minifilter.B8Slots))
}

func readFilter8(r io.Reader, wantBlocks uint64) (*Filter8, error) {
	nblocks, count, opts, err := readHeader(r, magic8, blockBytes, minifilter.B8Slots)
	if err != nil {
		return nil, err
	}
	if wantBlocks != 0 && nblocks != wantBlocks {
		return nil, fmt.Errorf("%w: stream has %d blocks, declared geometry needs %d",
			ErrBadFormat, nblocks, wantBlocks)
	}
	f := &Filter8{
		mask:   nblocks - 1,
		count:  count,
		opts:   opts,
		thresh: opts.threshold(minifilter.B8Slots, defThreshold8),
	}
	// Grow the block array in chunks while reading so a forged header
	// claiming an enormous block count fails on truncated input instead of
	// allocating the claimed size up front.
	const chunk = 1 << 16
	buf := make([]byte, 64)
	for read := uint64(0); read < nblocks; {
		n := nblocks - read
		if n > chunk {
			n = chunk
		}
		f.blocks = append(f.blocks, make([]minifilter.Block8, n)...)
		for j := uint64(0); j < n; j++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			b := &f.blocks[read+j]
			b.MetaLo = binary.LittleEndian.Uint64(buf[0:])
			b.MetaHi = binary.LittleEndian.Uint64(buf[8:])
			for k := range b.Fps {
				b.Fps[k] = binary.LittleEndian.Uint64(buf[16+8*k:])
			}
		}
		read += n
	}
	// Serialized data is untrusted: corrupted metadata would send block
	// operations out of bounds later, so audit the structure now.
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return f, nil
}

// WriteTo serializes the value-associating filter: the standard header,
// then each block's 64 bytes followed by its parallel value bytes. It
// implements io.WriterTo.
func (f *KVFilter8) WriteTo(w io.Writer) (int64, error) {
	if err := writeHeader(w, magicKV, uint64(len(f.blocks)), f.count, Options{}); err != nil {
		return 0, err
	}
	n := int64(headerBytes)
	buf := make([]byte, kvBlockBytes)
	for i := range f.blocks {
		b := &f.blocks[i]
		binary.LittleEndian.PutUint64(buf[0:], b.MetaLo)
		binary.LittleEndian.PutUint64(buf[8:], b.MetaHi)
		for j, word := range b.Fps {
			binary.LittleEndian.PutUint64(buf[16+8*j:], word)
		}
		copy(buf[blockBytes:], f.blockVals(uint64(i)))
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadKV8 deserializes a KVFilter8 written by WriteTo.
func ReadKV8(r io.Reader) (*KVFilter8, error) {
	nblocks, count, _, err := readHeader(r, magicKV, kvBlockBytes, minifilter.B8Slots)
	if err != nil {
		return nil, err
	}
	f := &KVFilter8{
		mask:  nblocks - 1,
		count: count,
	}
	const chunk = 1 << 16
	buf := make([]byte, kvBlockBytes)
	for read := uint64(0); read < nblocks; {
		n := nblocks - read
		if n > chunk {
			n = chunk
		}
		f.blocks = append(f.blocks, make([]minifilter.Block8, n)...)
		f.vals = append(f.vals, make([]byte, n*minifilter.B8Slots)...)
		for j := uint64(0); j < n; j++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			b := &f.blocks[read+j]
			b.MetaLo = binary.LittleEndian.Uint64(buf[0:])
			b.MetaHi = binary.LittleEndian.Uint64(buf[8:])
			for k := range b.Fps {
				b.Fps[k] = binary.LittleEndian.Uint64(buf[16+8*k:])
			}
			copy(f.blockVals(read+j), buf[blockBytes:])
		}
		read += n
	}
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return f, nil
}

// WriteTo serializes the filter. It implements io.WriterTo.
func (f *Filter16) WriteTo(w io.Writer) (int64, error) {
	if err := writeHeader(w, magic16, uint64(len(f.blocks)), f.count, f.opts); err != nil {
		return 0, err
	}
	n := int64(headerBytes)
	buf := make([]byte, 64)
	for i := range f.blocks {
		b := &f.blocks[i]
		binary.LittleEndian.PutUint64(buf[0:], b.Meta)
		// As with Filter8, word-native uint16 lanes serialize byte-identically
		// to the historical per-lane little-endian encoding.
		for j, word := range b.Fps {
			binary.LittleEndian.PutUint64(buf[8+8*j:], word)
		}
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadFilter16 deserializes a Filter16 written by WriteTo.
func ReadFilter16(r io.Reader) (*Filter16, error) {
	return readFilter16(r, 0)
}

// ReadFilter16Sized is ReadFilter8Sized for the 16-bit geometry.
func ReadFilter16Sized(r io.Reader, wantSlots uint64) (*Filter16, error) {
	return readFilter16(r, blocksFor(wantSlots, minifilter.B16Slots))
}

func readFilter16(r io.Reader, wantBlocks uint64) (*Filter16, error) {
	nblocks, count, opts, err := readHeader(r, magic16, blockBytes, minifilter.B16Slots)
	if err != nil {
		return nil, err
	}
	if wantBlocks != 0 && nblocks != wantBlocks {
		return nil, fmt.Errorf("%w: stream has %d blocks, declared geometry needs %d",
			ErrBadFormat, nblocks, wantBlocks)
	}
	f := &Filter16{
		mask:   nblocks - 1,
		count:  count,
		opts:   opts,
		thresh: opts.threshold(minifilter.B16Slots, defThreshold16),
	}
	const chunk = 1 << 16
	buf := make([]byte, 64)
	for read := uint64(0); read < nblocks; {
		n := nblocks - read
		if n > chunk {
			n = chunk
		}
		f.blocks = append(f.blocks, make([]minifilter.Block16, n)...)
		for j := uint64(0); j < n; j++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			b := &f.blocks[read+j]
			b.Meta = binary.LittleEndian.Uint64(buf[0:])
			for k := range b.Fps {
				b.Fps[k] = binary.LittleEndian.Uint64(buf[8+8*k:])
			}
		}
		read += n
	}
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return f, nil
}
