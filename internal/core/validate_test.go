package core

import (
	"math/rand"
	"testing"
)

func TestInvariantsHoldUnderChurn(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	rng := rand.New(rand.NewSource(1))
	var live []uint64
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 && f.LoadFactor() < 0.9 {
			h := rng.Uint64()
			if f.Insert(h) {
				live = append(live, h)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			f.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%2000 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariants16HoldUnderChurn(t *testing.T) {
	f := NewFilter16(1<<11, Options{})
	rng := rand.New(rand.NewSource(2))
	var live []uint64
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 && f.LoadFactor() < 0.88 {
			h := rng.Uint64()
			if f.Insert(h) {
				live = append(live, h)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			f.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsDetectCorruption(t *testing.T) {
	build := func() *Filter8 {
		f := NewFilter8(1<<10, Options{})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			f.Insert(rng.Uint64())
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("clean filter fails validation: %v", err)
		}
		return f
	}

	t.Run("flipped-terminator", func(t *testing.T) {
		f := build()
		f.Blocks()[3].MetaLo ^= 1 << 5
		if f.CheckInvariants() == nil {
			t.Error("corrupted metadata passed validation")
		}
	})
	t.Run("count-drift", func(t *testing.T) {
		f := build()
		f.count += 7
		if f.CheckInvariants() == nil {
			t.Error("count drift passed validation")
		}
	})
	t.Run("stray-high-bit", func(t *testing.T) {
		f := build()
		// Set a metadata bit far above the used region while clearing one
		// terminator to keep the popcount identical.
		b := &f.Blocks()[1]
		b.MetaHi |= 1 << 60
		b.MetaLo &^= 1 << 0
		if f.CheckInvariants() == nil {
			t.Error("stray high bit passed validation")
		}
	})
}
