package core

import (
	"math/rand"
	"testing"
)

// TestContainsBatchInputOrder pins the ContainsBatch contract: out[i]
// answers hs[i] even though probes run in radix-reordered block order.
// Membership is deterministic for a fixed filter, so batch answers must
// equal per-key Contains exactly (false positives included).
func TestContainsBatchInputOrder(t *testing.T) {
	for _, geom := range []string{"8", "16"} {
		t.Run(geom, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			present := make([]uint64, 4096)
			for i := range present {
				present[i] = rng.Uint64()
			}
			var insert func([]uint64) int
			var contains func(uint64) bool
			var containsBatch func([]uint64, []bool) []bool
			if geom == "8" {
				f := NewFilter8(1<<13, Options{})
				insert, contains, containsBatch = f.InsertBatch, f.Contains, f.ContainsBatch
			} else {
				f := NewFilter16(1<<13, Options{})
				insert, contains, containsBatch = f.InsertBatch, f.Contains, f.ContainsBatch
			}
			insert(present)
			// Interleave present and absent keys so hits and misses alternate
			// within each radix shard.
			hs := make([]uint64, 0, 2*len(present))
			for _, h := range present {
				hs = append(hs, h, rng.Uint64())
			}
			got := containsBatch(hs, nil)
			if len(got) != len(hs) {
				t.Fatalf("result length %d != %d", len(got), len(hs))
			}
			for i, h := range hs {
				if got[i] != contains(h) {
					t.Fatalf("out[%d] = %v, Contains(hs[%d]) = %v", i, got[i], i, contains(h))
				}
			}
		})
	}
}

// TestContainsBatchReusesDst checks that a dirty, oversized dst is reused
// and every position rewritten: stale true values must not leak through for
// misses.
func TestContainsBatchReusesDst(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	rng := rand.New(rand.NewSource(12))
	hs := make([]uint64, 1000) // all absent: filter is empty
	for i := range hs {
		hs[i] = rng.Uint64()
	}
	dst := make([]bool, 2000)
	for i := range dst {
		dst[i] = true
	}
	out := f.ContainsBatch(hs, dst)
	if len(out) != len(hs) {
		t.Fatalf("result length %d != %d", len(out), len(hs))
	}
	if &out[0] != &dst[0] {
		t.Fatal("oversized dst was not reused")
	}
	for i, v := range out {
		if v {
			t.Fatalf("stale true leaked at %d on an empty filter", i)
		}
	}
}

// TestBatchEmptyAndTiny: zero-length and single-key batches go through the
// small-batch path without touching the radix machinery.
func TestBatchEmptyAndTiny(t *testing.T) {
	f := NewFilter8(1<<10, Options{})
	if got := f.InsertBatch(nil); got != 0 {
		t.Fatalf("InsertBatch(nil) = %d", got)
	}
	if out := f.ContainsBatch(nil, nil); len(out) != 0 {
		t.Fatalf("ContainsBatch(nil) returned %d results", len(out))
	}
	if got := f.RemoveBatch(nil); got != 0 {
		t.Fatalf("RemoveBatch(nil) = %d", got)
	}
	if got := f.InsertBatch([]uint64{42}); got != 1 {
		t.Fatalf("single-key InsertBatch = %d", got)
	}
	// Raw small integers can collide into false positives; compare the absent
	// key against Contains instead of assuming false.
	if out := f.ContainsBatch([]uint64{42, 43}, nil); !out[0] || out[1] != f.Contains(43) {
		t.Fatalf("tiny ContainsBatch = %v, Contains(43) = %v", out, f.Contains(43))
	}
	if got := f.RemoveBatch([]uint64{42}); got != 1 {
		t.Fatalf("single-key RemoveBatch = %d", got)
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after symmetric insert/remove", f.Count())
	}
}

// TestInsertBatchAllDuplicates: a radix-path batch of one repeated key lands
// entirely on one block pair; successes must match repeated per-key Insert
// on an identical filter (both candidate blocks fill, the rest fail).
func TestInsertBatchAllDuplicates(t *testing.T) {
	const n = 1024 // >> minBatchPartition and >> two blocks' 96 slots
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = 0xdeadbeefcafef00d
	}
	f := NewFilter8(1<<12, Options{})
	model := NewFilter8(1<<12, Options{})
	want := 0
	for range hs {
		if model.Insert(hs[0]) {
			want++
		}
	}
	got := f.InsertBatch(hs)
	if got != want {
		t.Fatalf("duplicate batch inserted %d, per-key reference %d", got, want)
	}
	if got >= n {
		t.Fatal("scenario too weak: every duplicate fit")
	}
	if f.Count() != uint64(got) {
		t.Fatalf("Count %d != returned %d", f.Count(), got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after duplicate overflow: %v", err)
	}
	// Removing the duplicates back out must find exactly the stored copies.
	if removed := f.RemoveBatch(hs); removed != got {
		t.Fatalf("RemoveBatch removed %d of %d stored duplicates", removed, got)
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after removing all duplicates", f.Count())
	}
}

// TestRemoveBatchMatchesPerKey: batch removal of a present/absent mix agrees
// with per-key Remove fed the same radix order.
func TestRemoveBatchMatchesPerKey(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	present := make([]uint64, 4096)
	for i := range present {
		present[i] = rng.Uint64()
	}
	f := NewFilter16(1<<13, Options{})
	model := NewFilter16(1<<13, Options{})
	f.InsertBatch(present)
	model.InsertBatch(present)
	// Remove every other present key plus noise that was never inserted.
	victims := make([]uint64, 0, len(present))
	for i := 0; i < len(present); i += 2 {
		victims = append(victims, present[i], rng.Uint64())
	}
	sorted := model.scratch.partition(victims, model.mask, blockShift16)
	want := 0
	for _, h := range sorted {
		if model.Remove(h) {
			want++
		}
	}
	got := f.RemoveBatch(victims)
	if got != want {
		t.Fatalf("RemoveBatch = %d, per-key reference = %d", got, want)
	}
	if f.Count() != model.Count() {
		t.Fatalf("counts differ after batch removal: %d vs %d", f.Count(), model.Count())
	}
}

// TestBatchZeroAlloc guards the pipeline's allocation-free steady state:
// after a warm-up call grows the scratch buffers, batch calls (and the
// single-key hot paths they are built from) must not allocate at all.
func TestBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	hs := make([]uint64, 4096)
	for i := range hs {
		hs[i] = rng.Uint64()
	}
	dst := make([]bool, len(hs))

	t.Run("Filter8", func(t *testing.T) {
		f := NewFilter8(1<<16, Options{})
		f.InsertBatch(hs) // warm up scratch
		checkAllocs(t, "ContainsBatch", func() { f.ContainsBatch(hs, dst) })
		checkAllocs(t, "RemoveBatch", func() { f.RemoveBatch(hs) })
		checkAllocs(t, "InsertBatch", func() { f.InsertBatch(hs[:512]) })
		k := rng.Uint64()
		checkAllocs(t, "Insert", func() { f.Insert(k) })
		checkAllocs(t, "Contains", func() { f.Contains(k) })
		checkAllocs(t, "Remove", func() { f.Remove(k) })
	})
	t.Run("Filter16", func(t *testing.T) {
		f := NewFilter16(1<<16, Options{})
		f.InsertBatch(hs)
		checkAllocs(t, "ContainsBatch", func() { f.ContainsBatch(hs, dst) })
		checkAllocs(t, "RemoveBatch", func() { f.RemoveBatch(hs) })
		checkAllocs(t, "InsertBatch", func() { f.InsertBatch(hs[:512]) })
		k := rng.Uint64()
		checkAllocs(t, "Insert", func() { f.Insert(k) })
		checkAllocs(t, "Contains", func() { f.Contains(k) })
		checkAllocs(t, "Remove", func() { f.Remove(k) })
	})
}

func checkAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(20, fn); avg != 0 {
		t.Errorf("%s allocates %.1f times per call, want 0", name, avg)
	}
}

// TestContainsBatchSegmented shrinks maxIdxSegment to force the
// multi-segment scatter path (normally reached only by >2^30-key batches,
// where int32 indices would otherwise overflow) and checks input-order
// results across segment boundaries, with duplicates straddling segments.
func TestContainsBatchSegmented(t *testing.T) {
	old := maxIdxSegment
	maxIdxSegment = 300 // several segments per batch, each still radix-worthy
	defer func() { maxIdxSegment = old }()

	rng := rand.New(rand.NewSource(15))
	present := make([]uint64, 512)
	for i := range present {
		present[i] = rng.Uint64()
	}
	hs := make([]uint64, 0, 2048)
	for i := 0; i < 1024; i++ {
		// Mix hits, misses, and a recurring duplicate so the same key lands in
		// multiple segments.
		switch i % 3 {
		case 0:
			hs = append(hs, present[i%len(present)])
		case 1:
			hs = append(hs, rng.Uint64())
		default:
			hs = append(hs, present[0])
		}
	}

	t.Run("Filter8", func(t *testing.T) {
		f := NewFilter8(1<<13, Options{})
		f.InsertBatch(present)
		out := f.ContainsBatch(hs, nil)
		for i, h := range hs {
			if out[i] != f.Contains(h) {
				t.Fatalf("segmented out[%d] = %v, Contains = %v", i, out[i], f.Contains(h))
			}
		}
	})
	t.Run("Filter16", func(t *testing.T) {
		f := NewFilter16(1<<13, Options{})
		f.InsertBatch(present)
		dst := make([]bool, len(hs)) // aliased reuse across both segment sweeps
		out := f.ContainsBatch(hs, dst)
		if &out[0] != &dst[0] {
			t.Fatal("dst not reused on segmented path")
		}
		for i, h := range hs {
			if out[i] != f.Contains(h) {
				t.Fatalf("segmented out[%d] = %v, Contains = %v", i, out[i], f.Contains(h))
			}
		}
	})
}
