package core

import (
	"vqf/internal/minifilter"
	"vqf/internal/stats"
)

// KVFilter8 is a value-associating vector quotient filter (paper §8: "like
// the quotient filter, the vector quotient filter also has the ability to
// associate a small value with each item"). Each fingerprint slot carries a
// one-byte value in a parallel array that shifts in lockstep with the
// fingerprints, so Get costs the same two cache lines as Contains plus one
// value access.
//
// Semantics match other fingerprint maps (e.g. the CQF's value bits): Get
// returns the value of *a* matching fingerprint, so a false positive — with
// probability ≈ 2·(s/b)·2⁻⁸ — returns an arbitrary stored value. Keys are a
// multiset; duplicate Puts stack, and Delete removes one instance.
type KVFilter8 struct {
	blocks []minifilter.Block8
	vals   []byte // B8Slots bytes per block, parallel to block fingerprints
	mask   uint64
	count  uint64
	st     stats.Local
}

// NewKV8 creates a value-associating filter with at least nslots slots.
func NewKV8(nslots uint64) *KVFilter8 {
	k := blocksFor(nslots, minifilter.B8Slots)
	f := &KVFilter8{
		blocks: make([]minifilter.Block8, k),
		vals:   make([]byte, k*minifilter.B8Slots),
		mask:   k - 1,
	}
	for i := range f.blocks {
		f.blocks[i].Reset()
	}
	return f
}

func (f *KVFilter8) blockVals(b uint64) []byte {
	return f.vals[b*minifilter.B8Slots : (b+1)*minifilter.B8Slots]
}

// Put inserts the pre-hashed key h with value v, placing it in the emptier
// of its two candidate blocks. It returns false if both are full.
func (f *KVFilter8) Put(h uint64, v byte) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	b2 := secondary(h, b1, tag, f.mask, false)
	tgt := b1
	if f.blocks[b2].Occupancy() < f.blocks[b1].Occupancy() {
		tgt = b2
	}
	blk := &f.blocks[tgt]
	occ := blk.Occupancy()
	z := blk.InsertAt(bucket, fp)
	if z < 0 {
		f.st.InsertFailure()
		return false
	}
	vals := f.blockVals(tgt)
	copy(vals[z+1:occ+1], vals[z:occ])
	vals[z] = v
	f.count++
	f.st.Insert()
	return true
}

// Get returns the value associated with the pre-hashed key h. For keys never
// Put, ok is false with probability ≥ 1−ε; a colliding fingerprint returns
// its own value (the standard approximate-map contract).
func (f *KVFilter8) Get(h uint64) (v byte, ok bool) {
	b1, bucket, fp, tag := split8(h, f.mask)
	f.st.Lookup()
	if z := f.blocks[b1].FindSlot(bucket, fp); z >= 0 {
		return f.blockVals(b1)[z], true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if z := f.blocks[b2].FindSlot(bucket, fp); z >= 0 {
		return f.blockVals(b2)[z], true
	}
	return 0, false
}

// Update changes the value of one stored instance of h, returning false if
// its fingerprint is absent.
func (f *KVFilter8) Update(h uint64, v byte) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	f.st.Lookup()
	if z := f.blocks[b1].FindSlot(bucket, fp); z >= 0 {
		f.blockVals(b1)[z] = v
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if z := f.blocks[b2].FindSlot(bucket, fp); z >= 0 {
		f.blockVals(b2)[z] = v
		return true
	}
	return false
}

// Delete removes one stored instance of h (and its value), returning false
// if its fingerprint is absent.
func (f *KVFilter8) Delete(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	if f.deleteFrom(b1, bucket, fp) {
		f.st.Remove()
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if f.deleteFrom(b2, bucket, fp) {
		f.st.Remove()
		return true
	}
	f.st.RemoveMiss()
	return false
}

func (f *KVFilter8) deleteFrom(b uint64, bucket uint, fp byte) bool {
	blk := &f.blocks[b]
	occ := blk.Occupancy()
	z := blk.RemoveAt(bucket, fp)
	if z < 0 {
		return false
	}
	vals := f.blockVals(b)
	copy(vals[z:occ-1], vals[z+1:occ])
	vals[occ-1] = 0
	f.count--
	return true
}

// Count returns the number of stored key/value pairs.
func (f *KVFilter8) Count() uint64 { return f.count }

// Capacity returns the total number of slots.
func (f *KVFilter8) Capacity() uint64 { return uint64(len(f.blocks)) * minifilter.B8Slots }

// LoadFactor returns Count divided by Capacity.
func (f *KVFilter8) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the footprint of blocks plus values.
func (f *KVFilter8) SizeBytes() uint64 {
	return uint64(len(f.blocks))*64 + uint64(len(f.vals))
}

// BlockOccupancies returns the occupancy of every block.
func (f *KVFilter8) BlockOccupancies() []uint {
	out := make([]uint, len(f.blocks))
	for i := range f.blocks {
		out[i] = f.blocks[i].Occupancy()
	}
	return out
}

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *KVFilter8) SlotsPerBlock() uint { return minifilter.B8Slots }

// Stats returns the filter's operation counters. Puts count as inserts,
// Gets and Updates as lookups, Deletes as removes/remove-misses; the
// shortcut and optimistic counters stay zero (the KV filter always places
// two-choice and is single-threaded).
func (f *KVFilter8) Stats() stats.OpCounts { return f.st.Counts() }
