package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"vqf/internal/workload"
)

// TestConcurrentFusedKernelsUnderChurn races the fused probe kernels
// (optimistic Contains, and ContainsBatch's parallel shards) against writers
// driving the fused insert/remove kernels under block locks. A resident key
// set is inserted up front and never removed, so every lookup must find it
// no matter how the seqlock retries interleave with lane shifts — the
// go test -race run additionally checks the atomics discipline of the
// word-native block layout.
func TestConcurrentFusedKernelsUnderChurn(t *testing.T) {
	type cfilter interface {
		Insert(h uint64) bool
		Contains(h uint64) bool
		Remove(h uint64) bool
		ContainsBatch(hs []uint64, dst []bool) []bool
	}
	run := func(t *testing.T, f cfilter) {
		const residents = 1000
		const writers, readers = 4, 4
		const churnOps = 2000
		res := workload.NewStream(101).Keys(residents)
		for _, h := range res {
			if !f.Insert(h) {
				t.Fatal("resident insert failed at low load")
			}
		}
		var done atomic.Bool
		var wg sync.WaitGroup
		errs := make(chan string, writers+readers+1)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				churn := workload.NewStream(uint64(202 + id)).Keys(churnOps)
				for _, h := range churn {
					if f.Insert(h) {
						f.Remove(h)
					}
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !done.Load() {
					for _, h := range res {
						if !f.Contains(h) {
							errs <- "resident lost under churn"
							return
						}
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]bool, residents)
			for !done.Load() {
				out := f.ContainsBatch(res, dst)
				for i := range out {
					if !out[i] {
						errs <- "resident lost in batch lookup under churn"
						return
					}
				}
			}
		}()
		// Writers finish on their own; readers poll until then.
		go func() {
			defer done.Store(true)
			churn := workload.NewStream(999).Keys(churnOps)
			for _, h := range churn {
				if f.Insert(h) {
					f.Remove(h)
				}
			}
		}()
		wg.Wait()
		done.Store(true)
		select {
		case msg := <-errs:
			t.Fatal(msg)
		default:
		}
	}
	t.Run("cfilter8", func(t *testing.T) {
		run(t, NewCFilter8(1<<12, Options{}))
	})
	t.Run("cfilter16", func(t *testing.T) {
		run(t, NewCFilter16(1<<12, Options{}))
	})
}
