package core

import (
	"math/rand"
	"testing"
)

func fillTo16(t *testing.T, f *Filter16, want uint64, seed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, want)
	for uint64(len(keys)) < want {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at %d/%d items (LF %.4f)", len(keys), want, f.LoadFactor())
		}
		keys = append(keys, h)
	}
	return keys
}

func TestFilter16NoFalseNegatives(t *testing.T) {
	f := NewFilter16(1<<15, Options{})
	keys := fillTo16(t, f, f.Capacity()*90/100, 1)
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestFilter16FalsePositiveRate(t *testing.T) {
	f := NewFilter16(1<<15, Options{})
	fillTo16(t, f, f.Capacity()*90/100, 2)
	rng := rand.New(rand.NewSource(3))
	fp := 0
	const probes = 2000000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Full-filter analytic bound: 2·(28/36)·2⁻¹⁶ ≈ 2.37e-5; allow 2× slack
	// (the probe count gives ~47 expected hits at the bound).
	if rate > 2.37e-5*2 {
		t.Errorf("false-positive rate %.7f exceeds bound", rate)
	}
}

func TestFilter16ReachesHighLoadFactor(t *testing.T) {
	f := NewFilter16(1<<15, Options{})
	rng := rand.New(rand.NewSource(4))
	for f.Insert(rng.Uint64()) {
	}
	if lf := f.LoadFactor(); lf < 0.90 {
		t.Errorf("max load factor %.4f below 0.90", lf)
	}
}

func TestFilter16RemoveRestoresState(t *testing.T) {
	f := NewFilter16(1<<13, Options{})
	keys := fillTo16(t, f, f.Capacity()*80/100, 5)
	half := keys[:len(keys)/2]
	for _, h := range half {
		if !f.Remove(h) {
			t.Fatal("remove of inserted key failed")
		}
	}
	for _, h := range keys[len(half):] {
		if !f.Contains(h) {
			t.Fatal("false negative after unrelated removes")
		}
	}
	still := 0
	for _, h := range half {
		if f.Contains(h) {
			still++
		}
	}
	// 16-bit fingerprints: residual false positives should be very rare.
	if frac := float64(still) / float64(len(half)); frac > 0.005 {
		t.Errorf("%.4f of removed keys still report present", frac)
	}
}

func TestFilter16GenericEquivalence(t *testing.T) {
	fast := NewFilter16(1<<12, Options{})
	slow := NewFilter16(1<<12, Options{Generic: true})
	rng := rand.New(rand.NewSource(6))
	var keys []uint64
	for step := 0; step < 30000; step++ {
		switch rng.Intn(3) {
		case 0:
			h := rng.Uint64()
			a, b := fast.Insert(h), slow.Insert(h)
			if a != b {
				t.Fatalf("step %d: insert diverged", step)
			}
			if a {
				keys = append(keys, h)
			}
		case 1:
			if len(keys) == 0 {
				continue
			}
			i := rng.Intn(len(keys))
			h := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			if a, b := fast.Remove(h), slow.Remove(h); a != b {
				t.Fatalf("step %d: remove diverged", step)
			}
		case 2:
			h := rng.Uint64()
			if a, b := fast.Contains(h), slow.Contains(h); a != b {
				t.Fatalf("step %d: contains diverged", step)
			}
		}
	}
}

func TestFilter16DuplicatesAndAbsentRemove(t *testing.T) {
	f := NewFilter16(1<<12, Options{})
	const h = 0x0123456789abcdef
	for i := 0; i < 2; i++ {
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
	}
	if !f.Remove(h) || !f.Remove(h) {
		t.Fatal("removes failed")
	}
	if f.Remove(h) {
		t.Error("third remove succeeded")
	}
}
