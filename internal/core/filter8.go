package core

import (
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/swar"
)

// Filter8 is a single-threaded vector quotient filter with 8-bit fingerprints
// (target false-positive rate ≈ 2⁻⁸; empirically ≈ 0.004, paper §5). Blocks
// hold 48 slots across 80 buckets in one 64-byte cache line.
type Filter8 struct {
	blocks []minifilter.Block8
	mask   uint64
	count  uint64
	opts   Options
	thresh uint
	st     stats.Local

	// scratch backs the sequential batch pipeline (batch.go); owning it here
	// makes steady-state batch calls allocation-free.
	scratch batchScratch
}

// NewFilter8 creates a filter with at least nslots fingerprint slots. The
// block count is rounded up to a power of two (required by the xor trick);
// use Capacity to read the resulting slot count. The filter supports load
// factors up to ≈ 93% of Capacity with the shortcut optimization enabled
// (≈ 94.4% without).
func NewFilter8(nslots uint64, opts Options) *Filter8 {
	k := blocksFor(nslots, minifilter.B8Slots)
	f := &Filter8{
		blocks: make([]minifilter.Block8, k),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B8Slots, defThreshold8),
	}
	for i := range f.blocks {
		f.blocks[i].Reset()
	}
	return f
}

// Capacity returns the total number of fingerprint slots.
func (f *Filter8) Capacity() uint64 {
	return uint64(len(f.blocks)) * minifilter.B8Slots
}

// Count returns the number of fingerprints currently stored.
func (f *Filter8) Count() uint64 { return f.count }

// LoadFactor returns Count divided by Capacity.
func (f *Filter8) LoadFactor() float64 {
	return float64(f.count) / float64(f.Capacity())
}

// NumBlocks returns the number of mini-filter blocks.
func (f *Filter8) NumBlocks() uint64 { return uint64(len(f.blocks)) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter8) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Insert adds the pre-hashed key h to the filter. It returns false if both
// candidate blocks are full, which with high probability does not happen
// below ≈ 93% load factor.
func (f *Filter8) Insert(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	if f.opts.Generic {
		return f.insertGeneric(h, b1, bucket, fp, tag)
	}
	blk1 := &f.blocks[b1]
	occ1 := blk1.Occupancy()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		// Shortcut (§6.2): the primary block is emptier than the threshold,
		// so skip the secondary block entirely — one cache line touched.
		blk1.Insert(bucket, fp)
		f.count++
		f.st.ShortcutInsert()
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	blk := blk1
	if f.blocks[b2].Occupancy() < occ1 {
		blk = &f.blocks[b2]
	}
	if !blk.Insert(bucket, fp) {
		f.st.InsertFailure()
		return false
	}
	f.count++
	f.st.Insert()
	return true
}

func (f *Filter8) insertGeneric(h, b1 uint64, bucket uint, fp byte, tag uint64) bool {
	blk1 := &f.blocks[b1]
	occ1 := blk1.OccupancyGeneric()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertGeneric(bucket, fp)
		f.count++
		f.st.ShortcutInsert()
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	blk := blk1
	if f.blocks[b2].OccupancyGeneric() < occ1 {
		blk = &f.blocks[b2]
	}
	if !blk.InsertGeneric(bucket, fp) {
		f.st.InsertFailure()
		return false
	}
	f.count++
	f.st.Insert()
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter. False
// positives occur with probability ≈ 2·(s/b)·2⁻⁸; false negatives never
// occur for inserted keys.
func (f *Filter8) Contains(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	f.st.Lookup()
	if f.opts.Generic {
		if f.blocks[b1].ContainsGeneric(bucket, fp) {
			return true
		}
		b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
		return f.blocks[b2].ContainsGeneric(bucket, fp)
	}
	// Broadcast the fingerprint once; both block probes reuse it.
	bc := swar.BroadcastByte(fp)
	if f.blocks[b1].Probe(bucket, bc) != 0 {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	return f.blocks[b2].Probe(bucket, bc) != 0
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
// It returns false if no matching fingerprint is found. Removing a key that
// was never inserted may evict a colliding key (as in all deletion-capable
// filters); doing so on a filter built with IndependentHash can additionally
// produce false negatives and must be avoided.
func (f *Filter8) Remove(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	if f.opts.Generic {
		if f.blocks[b1].RemoveGeneric(bucket, fp) || f.blocks[b2].RemoveGeneric(bucket, fp) {
			f.count--
			f.st.Remove()
			return true
		}
		f.st.RemoveMiss()
		return false
	}
	bc := swar.BroadcastByte(fp)
	if f.blocks[b1].RemoveB(bucket, bc) || f.blocks[b2].RemoveB(bucket, bc) {
		f.count--
		f.st.Remove()
		return true
	}
	f.st.RemoveMiss()
	return false
}

// BlockOccupancies returns the occupancy of every block; the harness uses it
// to measure placement variance for the power-of-two-choices experiments.
func (f *Filter8) BlockOccupancies() []uint {
	out := make([]uint, len(f.blocks))
	for i := range f.blocks {
		out[i] = f.blocks[i].Occupancy()
	}
	return out
}

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *Filter8) SlotsPerBlock() uint { return minifilter.B8Slots }

// Stats returns the filter's operation counters. Like every other method of
// the single-threaded filter, it must not race with mutations.
func (f *Filter8) Stats() stats.OpCounts { return f.st.Counts() }
