package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestFilter8SerializeRoundTrip(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 0, 3000)
	for len(keys) < 3000 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	g, err := ReadFilter8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() || g.Capacity() != f.Capacity() {
		t.Fatalf("count/capacity mismatch after round trip")
	}
	for _, h := range keys {
		if !g.Contains(h) {
			t.Fatal("false negative after deserialization")
		}
	}
	// The deserialized filter remains fully operational.
	if !g.Remove(keys[0]) {
		t.Fatal("remove failed after deserialization")
	}
	if !g.Insert(rng.Uint64()) {
		t.Fatal("insert failed after deserialization")
	}
}

func TestFilter16SerializeRoundTrip(t *testing.T) {
	f := NewFilter16(1<<11, Options{NoShortcut: true})
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 0, 1500)
	for len(keys) < 1500 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFilter16(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range keys {
		if !g.Contains(h) {
			t.Fatal("false negative after deserialization")
		}
	}
	if !g.opts.NoShortcut {
		t.Error("options not preserved")
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       {1, 2, 3},
		"bad-magic":   bytes.Repeat([]byte{0xff}, headerBytes),
		"wrong-type":  nil, // filled below: a Filter16 stream fed to ReadFilter8
		"truncated":   nil, // header OK but body cut short
		"bad-version": nil,
	}
	var buf bytes.Buffer
	NewFilter16(1<<8, Options{}).WriteTo(&buf)
	cases["wrong-type"] = buf.Bytes()

	var buf2 bytes.Buffer
	NewFilter8(1<<8, Options{}).WriteTo(&buf2)
	cases["truncated"] = buf2.Bytes()[:headerBytes+10]

	bad := append([]byte(nil), buf2.Bytes()[:headerBytes]...)
	bad[4] = 99 // version
	cases["bad-version"] = bad

	for name, data := range cases {
		if _, err := ReadFilter8(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadFilter8 accepted malformed input", name)
		}
	}
}

func TestDeserializeRejectsNonPow2Blocks(t *testing.T) {
	var buf bytes.Buffer
	NewFilter8(1<<8, Options{}).WriteTo(&buf)
	data := buf.Bytes()
	data[8] = 3 // block count 3: not a power of two
	if _, err := ReadFilter8(bytes.NewReader(data)); err == nil {
		t.Error("accepted non-power-of-two block count")
	}
}

// TestDeserializeRejectsOverCapacityCount pins the pre-allocation count
// check: a header whose count no block array of the declared size could hold
// must be refused before any blocks are read.
func TestDeserializeRejectsOverCapacityCount(t *testing.T) {
	var buf bytes.Buffer
	NewFilter8(1<<8, Options{}).WriteTo(&buf)
	data := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(data[16:], ^uint64(0)) // count field
	if _, err := ReadFilter8(bytes.NewReader(data)); err == nil {
		t.Error("accepted count exceeding block capacity")
	}

	var kvBuf bytes.Buffer
	NewKV8(1 << 8).WriteTo(&kvBuf)
	kvData := append([]byte(nil), kvBuf.Bytes()...)
	binary.LittleEndian.PutUint64(kvData[16:], ^uint64(0))
	if _, err := ReadKV8(bytes.NewReader(kvData)); err == nil {
		t.Error("KV reader accepted count exceeding block capacity")
	}
}

// TestSizedReadersRejectGeometryMismatch: when the expected geometry is known
// (elastic levels), a stream with a structurally valid but different block
// count must be refused.
func TestSizedReadersRejectGeometryMismatch(t *testing.T) {
	var buf bytes.Buffer
	f8 := NewFilter8(1<<10, Options{})
	f8.WriteTo(&buf)
	if _, err := ReadFilter8Sized(bytes.NewReader(buf.Bytes()), 1<<10); err != nil {
		t.Fatalf("matching geometry rejected: %v", err)
	}
	if _, err := ReadFilter8Sized(bytes.NewReader(buf.Bytes()), 1<<14); err == nil {
		t.Error("8-bit stream with mismatched block count accepted")
	}

	var buf16 bytes.Buffer
	NewFilter16(1<<10, Options{}).WriteTo(&buf16)
	if _, err := ReadFilter16Sized(bytes.NewReader(buf16.Bytes()), 1<<10); err != nil {
		t.Fatalf("matching 16-bit geometry rejected: %v", err)
	}
	if _, err := ReadFilter16Sized(bytes.NewReader(buf16.Bytes()), 1<<14); err == nil {
		t.Error("16-bit stream with mismatched block count accepted")
	}
}
