package core

import (
	"math/rand"
	"testing"
)

func TestCountOfVQF(t *testing.T) {
	f := NewFilter8(1<<10, Options{})
	const h = 0x0123456789abcdef
	for want := uint64(1); want <= 10; want++ {
		if !f.Insert(h) {
			t.Fatalf("insert %d failed", want)
		}
		if got := f.CountOf(h); got != want {
			t.Fatalf("CountOf = %d, want %d", got, want)
		}
	}
	for want := uint64(9); ; want-- {
		if !f.Remove(h) {
			t.Fatal("remove failed")
		}
		if got := f.CountOf(h); got != want {
			t.Fatalf("CountOf = %d, want %d", got, want)
		}
		if want == 0 {
			break
		}
	}
}

func TestCountOfSpansBothBlocks(t *testing.T) {
	// Insert enough duplicates that they overflow from the primary into the
	// secondary block; CountOf must see all of them.
	f := NewFilter8(96, Options{NoShortcut: true}) // 2 blocks
	// The fingerprint byte (h>>16) must be odd so the xor trick maps the two
	// candidate blocks to distinct indices under the 1-bit block mask.
	const h = 0xabcdef9876553210
	inserted := uint64(0)
	for i := 0; i < 96; i++ {
		if !f.Insert(h) {
			break
		}
		inserted++
	}
	if inserted < 90 {
		t.Fatalf("only %d duplicate inserts before full", inserted)
	}
	if got := f.CountOf(h); got != inserted {
		t.Fatalf("CountOf = %d, want %d", got, inserted)
	}
}

func TestCountOfRandomAbsent(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		f.Insert(rng.Uint64())
	}
	nonzero := 0
	for i := 0; i < 50000; i++ {
		if f.CountOf(rng.Uint64()) > 0 {
			nonzero++
		}
	}
	if rate := float64(nonzero) / 50000; rate > 0.01 {
		t.Errorf("absent-key nonzero-count rate %.5f", rate)
	}
}
