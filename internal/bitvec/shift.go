package bitvec

// The vector quotient filter inserts a 0 bit into (and removes a bit from)
// a block's metadata word on every update. The paper implements these with
// PDEP/PEXT and lookup tables; here they are explicit shift arithmetic with
// the same constant instruction count.

// InsertZero64 inserts a 0 bit at position p of x: bits at positions >= p
// move up by one, the former bit 63 is discarded, and bit p becomes 0.
// p must be < 64.
func InsertZero64(x uint64, p uint) uint64 {
	low := x & (1<<p - 1)
	high := x &^ (1<<p - 1)
	return low | high<<1
}

// InsertOne64 inserts a 1 bit at position p of x, shifting bits >= p up by
// one and discarding the former bit 63. p must be < 64.
func InsertOne64(x uint64, p uint) uint64 {
	return InsertZero64(x, p) | 1<<p
}

// RemoveBit64 removes the bit at position p of x: bits above p move down by
// one and bit 63 becomes 0. p must be < 64.
func RemoveBit64(x uint64, p uint) uint64 {
	low := x & (1<<p - 1)
	high := x >> 1 &^ (1<<p - 1)
	return low | high
}

// InsertZero128 inserts a 0 bit at position p of the 128-bit word
// (hi<<64)|lo, shifting bits >= p up by one and discarding the former
// bit 127. p must be < 128.
func InsertZero128(lo, hi uint64, p uint) (uint64, uint64) {
	if p >= 64 {
		return lo, InsertZero64(hi, p-64)
	}
	carry := lo >> 63
	return InsertZero64(lo, p), hi<<1 | carry
}

// InsertOne128 inserts a 1 bit at position p of (hi<<64)|lo. p must be < 128.
func InsertOne128(lo, hi uint64, p uint) (uint64, uint64) {
	lo, hi = InsertZero128(lo, hi, p)
	if p >= 64 {
		return lo, hi | 1<<(p-64)
	}
	return lo | 1<<p, hi
}

// RemoveBit128 removes the bit at position p of (hi<<64)|lo, shifting bits
// above p down by one; bit 127 becomes 0. p must be < 128.
func RemoveBit128(lo, hi uint64, p uint) (uint64, uint64) {
	if p >= 64 {
		return lo, RemoveBit64(hi, p-64)
	}
	lo = RemoveBit64(lo, p)
	lo |= hi << 63 // former bit 64 becomes bit 63
	return lo, hi >> 1
}

// Bit128 reports whether bit p of (hi<<64)|lo is set. p must be < 128.
func Bit128(lo, hi uint64, p uint) bool {
	if p >= 64 {
		return hi>>(p-64)&1 == 1
	}
	return lo>>p&1 == 1
}

// SetBit128 returns the word with bit p set. p must be < 128.
func SetBit128(lo, hi uint64, p uint) (uint64, uint64) {
	if p >= 64 {
		return lo, hi | 1<<(p-64)
	}
	return lo | 1<<p, hi
}
