// Package bitvec provides the word-level bit machinery that the vector
// quotient filter's mini-filter metadata and the quotient filter's
// rank-and-select blocks are built on: constant-time select and rank in 64-
// and 128-bit words, and the shift-insert / shift-remove operations that the
// paper implements with the x86 PDEP and PEXT instructions.
//
// Bit order convention: the paper indexes metadata bits "from the left,
// starting at 0". Throughout this package, bit i of the paper's bitvector is
// the bit of weight 1<<i (LSB-first). Select, rank, insert and remove are all
// defined in that order.
package bitvec

import "math/bits"

// selectInByte[b][k] is the position (0-7) of the k-th set bit of byte b, or
// 8 if byte b has at most k set bits. It makes select-in-word a table lookup
// once the containing byte is known, mirroring the lookup-table-assisted
// select of "A fast x86 implementation of select" (Pandey et al.).
var selectInByte [256][8]uint8

func init() {
	for b := 0; b < 256; b++ {
		k := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				selectInByte[b][k] = uint8(i)
				k++
			}
		}
		for ; k < 8; k++ {
			selectInByte[b][k] = 8
		}
	}
}

// Select64 returns the index of the k-th set bit of x (k counted from 0,
// bits counted LSB-first). If x has k or fewer set bits it returns 64.
//
// This is the software stand-in for the PDEP-based select trick: a SWAR
// byte-wise popcount prefix scan locates the containing byte, then a table
// lookup finds the bit within it. The instruction count is a small constant
// independent of x.
func Select64(x uint64, k uint) uint {
	// Byte-wise popcounts via SWAR: spread popcount of each byte into that
	// byte lane, then prefix-sum the lanes with a multiply.
	const (
		ones = 0x0101010101010101
		m1   = 0x5555555555555555
		m2   = 0x3333333333333333
		m4   = 0x0f0f0f0f0f0f0f0f
	)
	s := x - (x>>1)&m1
	s = s&m2 + (s>>2)&m2
	s = (s + s>>4) & m4
	// prefix[i] = popcount of bytes 0..i, in byte lane i.
	prefix := s * ones
	total := prefix >> 56
	if uint(total) <= k {
		return 64
	}
	// Find the first byte lane whose prefix popcount exceeds k. SWAR
	// comparison: lane i gets its high bit set iff prefix[i] > k.
	spread := uint64(k+1) * ones
	gt := ((prefix | 0x8080808080808080) - spread) & 0x8080808080808080
	// All lanes >= the found one have their high bit clear... Actually gt has
	// high bit set in lane i iff prefix[i] >= k+1, i.e. the k-th bit lies in
	// or before byte i. The first such lane is the containing byte.
	byteIdx := uint(bits.TrailingZeros64(gt)) >> 3
	var before uint
	if byteIdx > 0 {
		before = uint((prefix >> (8 * (byteIdx - 1))) & 0xff)
	}
	b := uint8(x >> (8 * byteIdx))
	return 8*byteIdx + uint(selectInByte[b][k-before])
}

// Rank64 returns the number of set bits of x strictly below position i.
// i may be up to 64, in which case it returns the full popcount.
func Rank64(x uint64, i uint) uint {
	if i >= 64 {
		return uint(bits.OnesCount64(x))
	}
	return uint(bits.OnesCount64(x & (1<<i - 1)))
}

// Select128 returns the index of the k-th set bit of the 128-bit word
// (hi<<64)|lo, or 128 if there is no such bit.
func Select128(lo, hi uint64, k uint) uint {
	pc := uint(bits.OnesCount64(lo))
	if k < pc {
		return Select64(lo, k)
	}
	s := Select64(hi, k-pc)
	if s == 64 {
		return 128
	}
	return 64 + s
}

// Rank128 returns the number of set bits of (hi<<64)|lo strictly below
// position i (i up to 128).
func Rank128(lo, hi uint64, i uint) uint {
	if i <= 64 {
		return Rank64(lo, i)
	}
	return uint(bits.OnesCount64(lo)) + Rank64(hi, i-64)
}
