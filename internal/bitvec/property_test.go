package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// Property: inserting a 0 at p shifts every select result at or above p's
// rank up by exactly one position.
func TestPropertyInsertZeroShiftsSelect(t *testing.T) {
	prop := func(x uint64, p8, k8 uint8) bool {
		p := uint(p8) % 64
		k := uint(k8) % 32
		pos := Select64(x, k)
		if pos >= 63 {
			return true // shifted out of range; nothing to compare
		}
		y := InsertZero64(x, p)
		want := pos
		if pos >= p {
			want = pos + 1
		}
		return Select64(y, k) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank and popcount agree at the boundaries and rank is monotone.
func TestPropertyRankMonotone(t *testing.T) {
	prop := func(x uint64, i8 uint8) bool {
		i := uint(i8) % 64
		if Rank64(x, 0) != 0 {
			return false
		}
		if Rank64(x, 64) != uint(bits.OnesCount64(x)) {
			return false
		}
		return Rank64(x, i+1) >= Rank64(x, i)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveBit128 reduces the total popcount by the removed bit's
// value and preserves bits below p exactly.
func TestPropertyRemoveBitPopcount(t *testing.T) {
	prop := func(lo, hi uint64, p8 uint8) bool {
		p := uint(p8) % 128
		before := bits.OnesCount64(lo) + bits.OnesCount64(hi)
		bit := 0
		if Bit128(lo, hi, p) {
			bit = 1
		}
		nl, nh := RemoveBit128(lo, hi, p)
		after := bits.OnesCount64(nl) + bits.OnesCount64(nh)
		if after != before-bit {
			return false
		}
		// Bits strictly below p are untouched.
		for i := uint(0); i < p; i++ {
			if Bit128(nl, nh, i) != Bit128(lo, hi, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select128 partitions correctly across the word boundary.
func TestPropertySelect128Boundary(t *testing.T) {
	prop := func(lo, hi uint64, k8 uint8) bool {
		k := uint(k8) % 128
		pos := Select128(lo, hi, k)
		pcLo := uint(bits.OnesCount64(lo))
		switch {
		case pos == 128:
			return pcLo+uint(bits.OnesCount64(hi)) <= k
		case pos < 64:
			return k < pcLo
		default:
			return k >= pcLo
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}
