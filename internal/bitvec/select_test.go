package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// selectRef is the obvious loop implementation Select64 must agree with.
func selectRef(x uint64, k uint) uint {
	for i := uint(0); i < 64; i++ {
		if x>>i&1 == 1 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return 64
}

func TestSelect64KnownValues(t *testing.T) {
	cases := []struct {
		x    uint64
		k    uint
		want uint
	}{
		{0, 0, 64},
		{1, 0, 0},
		{1, 1, 64},
		{0b100, 0, 2}, // the paper's example: select(001000000, 0) = 2
		{0b1010, 0, 1},
		{0b1010, 1, 3},
		{0b1010, 2, 64},
		{^uint64(0), 0, 0},
		{^uint64(0), 63, 63},
		{1 << 63, 0, 63},
		{0xff00000000000000, 3, 59},
	}
	for _, c := range cases {
		if got := Select64(c.x, c.k); got != c.want {
			t.Errorf("Select64(%#x, %d) = %d, want %d", c.x, c.k, got, c.want)
		}
	}
}

func TestSelect64ExhaustiveSmall(t *testing.T) {
	// Every 16-bit value in the low, middle and high byte positions, every k.
	for v := 0; v < 1<<16; v += 7 {
		for _, shift := range []uint{0, 24, 48} {
			x := uint64(v) << shift
			for k := uint(0); k <= uint(bits.OnesCount64(x)); k++ {
				if got, want := Select64(x, k), selectRef(x, k); got != want {
					t.Fatalf("Select64(%#x, %d) = %d, want %d", x, k, got, want)
				}
			}
		}
	}
}

func TestSelect64MatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		x := rng.Uint64()
		k := uint(rng.Intn(66))
		if got, want := Select64(x, k), selectRef(x, k); got != want {
			t.Fatalf("Select64(%#x, %d) = %d, want %d", x, k, got, want)
		}
	}
}

func TestSelect64Property(t *testing.T) {
	// Property: if Select64(x,k) = i < 64 then bit i is set and rank(x,i) = k.
	f := func(x uint64, k8 uint8) bool {
		k := uint(k8) % 64
		i := Select64(x, k)
		if i == 64 {
			return uint(bits.OnesCount64(x)) <= k
		}
		return x>>i&1 == 1 && Rank64(x, i) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRank64(t *testing.T) {
	cases := []struct {
		x    uint64
		i    uint
		want uint
	}{
		{0, 10, 0},
		{^uint64(0), 0, 0},
		{^uint64(0), 64, 64},
		{^uint64(0), 13, 13},
		{0b1011, 3, 2},
		{0b1011, 4, 3},
	}
	for _, c := range cases {
		if got := Rank64(c.x, c.i); got != c.want {
			t.Errorf("Rank64(%#x, %d) = %d, want %d", c.x, c.i, got, c.want)
		}
	}
}

func TestRankSelectInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x := rng.Uint64()
		pc := uint(bits.OnesCount64(x))
		for k := uint(0); k < pc; k++ {
			pos := Select64(x, k)
			if Rank64(x, pos) != k {
				t.Fatalf("rank(select(%#x,%d)) != %d", x, k, k)
			}
		}
	}
}

func TestSelect128(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		k      uint
		want   uint
	}{
		{0, 0, 0, 128},
		{1, 0, 0, 0},
		{0, 1, 0, 64},
		{0, 1 << 63, 0, 127},
		{^uint64(0), ^uint64(0), 127, 127},
		{^uint64(0), 1, 64, 64},
		{0b11, 0b11, 2, 64},
		{0b11, 0b11, 3, 65},
		{0b11, 0b11, 4, 128},
	}
	for _, c := range cases {
		if got := Select128(c.lo, c.hi, c.k); got != c.want {
			t.Errorf("Select128(%#x, %#x, %d) = %d, want %d", c.lo, c.hi, c.k, got, c.want)
		}
	}
}

func TestRank128SelectConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		lo, hi := rng.Uint64(), rng.Uint64()
		pc := uint(bits.OnesCount64(lo) + bits.OnesCount64(hi))
		for k := uint(0); k < pc; k += 3 {
			pos := Select128(lo, hi, k)
			if pos >= 128 {
				t.Fatalf("select128 returned %d for k=%d pc=%d", pos, k, pc)
			}
			if !Bit128(lo, hi, pos) {
				t.Fatalf("bit at select128 position %d not set", pos)
			}
			if Rank128(lo, hi, pos) != k {
				t.Fatalf("rank128(select128(...,%d)) mismatch", k)
			}
		}
	}
}

func BenchmarkSelect64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]uint64, 1024)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	b.ResetTimer()
	var sink uint
	for i := 0; i < b.N; i++ {
		sink += Select64(xs[i&1023], uint(i&31))
	}
	_ = sink
}

func BenchmarkSelect128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]uint64, 2048)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	b.ResetTimer()
	var sink uint
	for i := 0; i < b.N; i++ {
		sink += Select128(xs[i&2047], xs[(i+1)&2047], uint(i&63))
	}
	_ = sink
}
