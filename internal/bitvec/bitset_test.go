package bitvec

import (
	"math/rand"
	"testing"
)

func TestBitsetSetTestClear(t *testing.T) {
	b := NewBitset(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []uint64{0, 1, 63, 64, 65, 127, 999} {
		if b.Test(i) {
			t.Errorf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 7 {
		t.Errorf("Count = %d, want 7", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if b.Count() != 6 {
		t.Errorf("Count = %d, want 6", b.Count())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d", b.Count())
	}
}

func TestBitsetCountMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	b := NewBitset(4096)
	model := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		pos := uint64(rng.Intn(4096))
		if rng.Intn(2) == 0 {
			b.Set(pos)
			model[pos] = true
		} else {
			b.Clear(pos)
			delete(model, pos)
		}
	}
	if int(b.Count()) != len(model) {
		t.Fatalf("Count = %d, model = %d", b.Count(), len(model))
	}
	for pos := range model {
		if !b.Test(pos) {
			t.Fatalf("bit %d missing", pos)
		}
	}
}

func TestBitsetSizeBits(t *testing.T) {
	if got := NewBitset(1).SizeBits(); got != 64 {
		t.Errorf("SizeBits(1) = %d", got)
	}
	if got := NewBitset(64).SizeBits(); got != 64 {
		t.Errorf("SizeBits(64) = %d", got)
	}
	if got := NewBitset(65).SizeBits(); got != 128 {
		t.Errorf("SizeBits(65) = %d", got)
	}
}
