package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bits128 expands a 128-bit word into a []bool for reference computations.
func bits128(lo, hi uint64) []bool {
	out := make([]bool, 128)
	for i := uint(0); i < 64; i++ {
		out[i] = lo>>i&1 == 1
		out[64+i] = hi>>i&1 == 1
	}
	return out
}

func pack128(b []bool) (lo, hi uint64) {
	for i := uint(0); i < 64; i++ {
		if b[i] {
			lo |= 1 << i
		}
		if b[64+i] {
			hi |= 1 << i
		}
	}
	return
}

func TestInsertZero64(t *testing.T) {
	cases := []struct {
		x    uint64
		p    uint
		want uint64
	}{
		{0b1111, 0, 0b11110},
		{0b1111, 2, 0b11011},
		{0b1111, 4, 0b01111},
		{0, 13, 0},
		{^uint64(0), 0, ^uint64(0) - 1},
		{1 << 63, 0, 0}, // top bit shifted out
	}
	for _, c := range cases {
		if got := InsertZero64(c.x, c.p); got != c.want {
			t.Errorf("InsertZero64(%#b, %d) = %#b, want %#b", c.x, c.p, got, c.want)
		}
	}
}

func TestInsertOne64(t *testing.T) {
	if got := InsertOne64(0b1001, 1); got != 0b10011 {
		t.Errorf("InsertOne64(0b1001, 1) = %#b, want 0b10011", got)
	}
	if got := InsertOne64(0, 63); got != 1<<63 {
		t.Errorf("InsertOne64(0, 63) = %#x", got)
	}
}

func TestRemoveBit64(t *testing.T) {
	cases := []struct {
		x    uint64
		p    uint
		want uint64
	}{
		{0b11011, 2, 0b1111},
		{0b11110, 0, 0b1111},
		{0b01111, 4, 0b1111},
		{^uint64(0), 31, ^uint64(0) >> 1},
	}
	for _, c := range cases {
		if got := RemoveBit64(c.x, c.p); got != c.want {
			t.Errorf("RemoveBit64(%#b, %d) = %#b, want %#b", c.x, c.p, got, c.want)
		}
	}
}

func TestInsertThenRemove64IsIdentityOnLow63(t *testing.T) {
	f := func(x uint64, p8 uint8) bool {
		p := uint(p8) % 64
		// After inserting at p and removing at p, the low 63 bits must be
		// unchanged (bit 63 is discarded by the insert).
		y := RemoveBit64(InsertZero64(x, p), p)
		mask := uint64(1)<<63 - 1
		return y&mask == x&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertZero128MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5000; i++ {
		lo, hi := rng.Uint64(), rng.Uint64()
		p := uint(rng.Intn(128))
		gotLo, gotHi := InsertZero128(lo, hi, p)
		ref := bits128(lo, hi)
		shifted := make([]bool, 128)
		copy(shifted, ref[:p])
		copy(shifted[p+1:], ref[p:127])
		wantLo, wantHi := pack128(shifted)
		if gotLo != wantLo || gotHi != wantHi {
			t.Fatalf("InsertZero128(%#x,%#x,%d) = %#x,%#x want %#x,%#x",
				lo, hi, p, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

func TestRemoveBit128MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		lo, hi := rng.Uint64(), rng.Uint64()
		p := uint(rng.Intn(128))
		gotLo, gotHi := RemoveBit128(lo, hi, p)
		ref := bits128(lo, hi)
		shifted := make([]bool, 128)
		copy(shifted, ref[:p])
		copy(shifted[p:], ref[p+1:])
		wantLo, wantHi := pack128(shifted)
		if gotLo != wantLo || gotHi != wantHi {
			t.Fatalf("RemoveBit128(%#x,%#x,%d) = %#x,%#x want %#x,%#x",
				lo, hi, p, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

func TestInsertOne128SetsBit(t *testing.T) {
	f := func(lo, hi uint64, p8 uint8) bool {
		p := uint(p8) % 128
		gl, gh := InsertOne128(lo, hi, p)
		return Bit128(gl, gh, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRemove128RoundTrip(t *testing.T) {
	f := func(lo, hi uint64, p8 uint8) bool {
		p := uint(p8) % 128
		il, ih := InsertZero128(lo, hi, p)
		rl, rh := RemoveBit128(il, ih, p)
		// Bit 127 is discarded by the insert; compare the rest.
		mask := uint64(1)<<63 - 1
		return rl == lo && rh&mask == hi&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestSetBit128AndBit128(t *testing.T) {
	var lo, hi uint64
	lo, hi = SetBit128(lo, hi, 0)
	lo, hi = SetBit128(lo, hi, 63)
	lo, hi = SetBit128(lo, hi, 64)
	lo, hi = SetBit128(lo, hi, 127)
	for _, p := range []uint{0, 63, 64, 127} {
		if !Bit128(lo, hi, p) {
			t.Errorf("bit %d not set", p)
		}
	}
	for _, p := range []uint{1, 62, 65, 126} {
		if Bit128(lo, hi, p) {
			t.Errorf("bit %d unexpectedly set", p)
		}
	}
}
