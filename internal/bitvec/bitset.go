package bitvec

import "math/bits"

// Bitset is a fixed-size bit array backed by uint64 words. It is the storage
// substrate for the Bloom filter family and for occupancy tracking in the
// benchmark harness.
type Bitset struct {
	words []uint64
	n     uint64
}

// NewBitset returns a Bitset holding n bits, all zero.
func NewBitset(n uint64) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the set.
func (b *Bitset) Len() uint64 { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i uint64) { b.words[i>>6] |= 1 << (i & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i uint64) { b.words[i>>6] &^= 1 << (i & 63) }

// Test reports whether bit i is set.
func (b *Bitset) Test(i uint64) bool { return b.words[i>>6]>>(i&63)&1 == 1 }

// Count returns the number of set bits.
func (b *Bitset) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SizeBits returns the number of bits of storage the bitset occupies,
// including slack in the final word.
func (b *Bitset) SizeBits() uint64 { return uint64(len(b.words)) * 64 }

// Words exposes the backing words for serialization.
func (b *Bitset) Words() []uint64 { return b.words }
