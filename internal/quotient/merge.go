package quotient

import "fmt"

// Merge combines two quotient filters with identical geometry into a new
// filter containing every element of both — the other advanced QF feature
// the paper contrasts with the VQF (§1). Merging works on (quotient,
// remainder) pairs via enumeration, so no original keys are needed; because
// both inputs were built from the same hash split, the merged filter answers
// queries exactly as if every key had been inserted into one filter.
//
// The combined element count must fit: merging two half-full filters of the
// same size yields a nearly full one. Merge returns an error if the result
// would exceed capacity.
func Merge(a, b *Filter) (*Filter, error) {
	if a.qbits != b.qbits || a.rbits != b.rbits {
		return nil, fmt.Errorf("quotient: geometry mismatch: (%d,%d) vs (%d,%d)",
			a.qbits, a.rbits, b.qbits, b.rbits)
	}
	if a.count+b.count > a.Capacity() {
		return nil, fmt.Errorf("quotient: merged count %d exceeds capacity %d",
			a.count+b.count, a.Capacity())
	}
	out := mustNew(a.qbits, a.rbits)
	a.Quotients(func(fq, fr uint64) { out.insertQR(fq, fr) })
	b.Quotients(func(fq, fr uint64) { out.insertQR(fq, fr) })
	return out, nil
}

// MergeResize merges two same-geometry filters into a doubled filter (one
// more quotient bit, one fewer remainder bit), for when the combined counts
// would overflow the original geometry.
func MergeResize(a, b *Filter) (*Filter, error) {
	if a.qbits != b.qbits || a.rbits != b.rbits {
		return nil, fmt.Errorf("quotient: geometry mismatch: (%d,%d) vs (%d,%d)",
			a.qbits, a.rbits, b.qbits, b.rbits)
	}
	if a.rbits <= 1 {
		return nil, fmt.Errorf("quotient: cannot shrink %d-bit remainders", a.rbits)
	}
	if a.qbits >= MaxQBits {
		return nil, fmt.Errorf("quotient: cannot grow past %d quotient bits", MaxQBits)
	}
	out := mustNew(a.qbits+1, a.rbits-1)
	move := func(f *Filter) {
		f.Quotients(func(fq, fr uint64) {
			out.insertQR(fq<<1|fr>>(f.rbits-1), fr&(f.rmask>>1))
		})
	}
	move(a)
	move(b)
	return out, nil
}
