package quotient

import (
	"math/rand"
	"testing"
)

func TestCountOfTracksDuplicates(t *testing.T) {
	f := mustNew(10, 8)
	const h = 0x7777aaaa1234
	for want := uint64(1); want <= 6; want++ {
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
		if got := f.CountOf(h); got != want {
			t.Fatalf("CountOf = %d, want %d", got, want)
		}
	}
	for want := uint64(5); ; want-- {
		if !f.Remove(h) {
			t.Fatal("remove failed")
		}
		if got := f.CountOf(h); got != want {
			t.Fatalf("CountOf = %d, want %d after removes", got, want)
		}
		if want == 0 {
			break
		}
	}
}

func TestCountOfModel(t *testing.T) {
	f := mustNew(8, 8)
	rng := rand.New(rand.NewSource(1))
	type fpKey struct{ fq, fr uint64 }
	model := map[fpKey]uint64{}
	var keys []uint64
	for i := 0; i < 200; i++ {
		h := uint64(rng.Intn(4000))
		if !f.Insert(h) {
			break
		}
		fq, fr := f.split(h)
		model[fpKey{fq, fr}]++
		keys = append(keys, h)
	}
	for _, h := range keys {
		fq, fr := f.split(h)
		if got := f.CountOf(h); got != model[fpKey{fq, fr}] {
			t.Fatalf("CountOf(%#x) = %d, want %d", h, got, model[fpKey{fq, fr}])
		}
	}
	if f.CountOf(^uint64(0)) != 0 {
		t.Error("CountOf of absent key nonzero")
	}
}
