// Package quotient implements a quotient filter: the Robin-Hood-hashing
// filter of Bender et al. (VLDB 2012) that the vector quotient filter paper
// benchmarks against (via Pandey et al.'s counting quotient filter
// implementation, reference [43]).
//
// A key hash is split into a q-bit quotient and an r-bit remainder. The
// remainder is stored at (or right of) the slot named by the quotient;
// remainders sharing a quotient form a sorted "run", consecutive non-empty
// slots form a "cluster", and three metadata bits per slot — occupied,
// continuation, shifted — recover each remainder's quotient. Inserts shift
// entire cluster suffixes right by one, so insertion cost grows with cluster
// length and hence load factor: this is the collision-resolution cost the
// VQF paper's Figure 4a shows climbing ≈4× between 10% and 90% occupancy.
//
// Substitution note (see DESIGN.md): the paper's comparator is the CQF,
// whose rank-and-select block encoding spends 2.125 metadata bits per slot
// and adds variable-size counters. This implementation uses the classic
// 3-bit-per-slot scheme with multiset semantics: identical Robin Hood
// run/cluster dynamics (the performance-relevant property), slightly larger
// metadata. Space accounting reports the real 3-bit layout.
package quotient

import (
	"fmt"
	"math/bits"
)

// Metadata bits, packed with the remainder as rem<<3 | bits.
const (
	occupiedBit     = 1 << 0 // canonical slot's quotient has a run somewhere
	continuationBit = 1 << 1 // this element continues the previous slot's run
	shiftedBit      = 1 << 2 // this element is right of its canonical slot
	metaMask        = occupiedBit | continuationBit | shiftedBit
)

// Filter is a quotient filter with 2^q slots and r-bit remainders. It
// supports insertion, lookup and deletion with multiset semantics, and
// doubling via Resize — the feature the paper notes the VQF lacks.
type Filter struct {
	remainders []byte // width bytes per slot
	meta       []uint8
	qbits      uint
	rbits      uint
	width      uint // remainder bytes per slot (1 or 2)
	mask       uint64
	rmask      uint64
	count      uint64
}

// MaxQBits bounds the quotient width: 2^40 slots is already a terabyte-scale
// filter, and the cap keeps size arithmetic far from uint64 overflow.
const MaxQBits = 40

// New creates a quotient filter with 2^qbits slots and rbits-bit remainders
// (8 and 16 are the benchmarked configurations; 1–16 are accepted — Resize
// produces intermediate widths). Remainders are stored byte-aligned.
// Out-of-range parameters are reported as an error: the harness and the
// verification oracle size filters from run-time configuration, so bad
// sizing must be recoverable, not a panic.
func New(qbits, rbits uint) (*Filter, error) {
	if qbits < 1 || qbits > MaxQBits {
		return nil, fmt.Errorf("quotient: qbits %d outside [1, %d]", qbits, MaxQBits)
	}
	if rbits < 1 || rbits > 16 {
		return nil, fmt.Errorf("quotient: rbits %d outside [1, 16]", rbits)
	}
	size := uint64(1) << qbits
	width := uint(1)
	if rbits > 8 {
		width = 2
	}
	return &Filter{
		remainders: make([]byte, size*uint64(width)),
		meta:       make([]uint8, size),
		qbits:      qbits,
		rbits:      rbits,
		width:      width,
		mask:       size - 1,
		rmask:      1<<rbits - 1,
	}, nil
}

// mustNew builds a filter from parameters the caller has already proven
// valid (derived from an existing filter's geometry). A failure here is an
// internal invariant violation, hence the panic.
func mustNew(qbits, rbits uint) *Filter {
	f, err := New(qbits, rbits)
	if err != nil {
		panic("quotient: internal sizing invariant violated: " + err.Error())
	}
	return f
}

// NewForSlots creates a filter with at least nslots slots (rounded up to a
// power of two).
func NewForSlots(nslots uint64, rbits uint) (*Filter, error) {
	q := uint(1)
	if nslots > 2 {
		q = uint(bits.Len64(nslots - 1))
	}
	return New(q, rbits)
}

func (f *Filter) incr(i uint64) uint64 { return (i + 1) & f.mask }
func (f *Filter) decr(i uint64) uint64 { return (i - 1) & f.mask }

// getSlot returns the slot's packed element: remainder<<3 | metadata bits.
func (f *Filter) getSlot(i uint64) uint64 {
	m := uint64(f.meta[i])
	if f.width == 1 {
		return uint64(f.remainders[i])<<3 | m
	}
	j := i * 2
	return (uint64(f.remainders[j])|uint64(f.remainders[j+1])<<8)<<3 | m
}

func (f *Filter) setSlot(i uint64, elt uint64) {
	f.meta[i] = uint8(elt & metaMask)
	rem := elt >> 3
	if f.width == 1 {
		f.remainders[i] = byte(rem)
		return
	}
	j := i * 2
	f.remainders[j] = byte(rem)
	f.remainders[j+1] = byte(rem >> 8)
}

func isOccupied(elt uint64) bool     { return elt&occupiedBit != 0 }
func isContinuation(elt uint64) bool { return elt&continuationBit != 0 }
func isShifted(elt uint64) bool      { return elt&shiftedBit != 0 }
func isEmpty(elt uint64) bool        { return elt&metaMask == 0 }
func isClusterStart(elt uint64) bool {
	return !isEmpty(elt) && !isContinuation(elt) && !isShifted(elt)
}
func isRunStart(elt uint64) bool {
	return !isEmpty(elt) && !isContinuation(elt)
}
func remainder(elt uint64) uint64 { return elt >> 3 }

// split derives the quotient and remainder from a key hash: remainder from
// the low r bits, quotient from the bits above (so that quotient and
// remainder are independent).
func (f *Filter) split(h uint64) (fq, fr uint64) {
	return (h >> f.rbits) & f.mask, h & f.rmask
}

// findRunIndex returns the slot where fq's run starts (or would start).
// occupied[fq] must already reflect the run's existence for an insert.
func (f *Filter) findRunIndex(fq uint64) uint64 {
	// Walk left to the cluster start…
	b := fq
	for isShifted(f.getSlot(b)) {
		b = f.decr(b)
	}
	// …then forward, pairing runs with occupied quotients until we reach fq.
	s := b
	for b != fq {
		for {
			s = f.incr(s)
			if !isContinuation(f.getSlot(s)) {
				break
			}
		}
		for {
			b = f.incr(b)
			if isOccupied(f.getSlot(b)) {
				break
			}
		}
	}
	return s
}

// insertInto writes elt at slot s, shifting the rest of the cluster right by
// one slot. Occupied bits stay with their slots; continuation/shifted bits
// travel with their elements.
func (f *Filter) insertInto(s uint64, elt uint64) {
	curr := elt
	for {
		prev := f.getSlot(s)
		empty := isEmpty(prev)
		if !empty {
			prev |= shiftedBit
			if isOccupied(prev) {
				curr |= occupiedBit
				prev &^= occupiedBit
			}
		}
		f.setSlot(s, curr)
		curr = prev
		s = f.incr(s)
		if empty {
			return
		}
	}
}

// Insert adds the pre-hashed key h. It returns false if the table is
// completely full. Duplicate fingerprints are stored (multiset semantics),
// keeping runs sorted with duplicates adjacent.
func (f *Filter) Insert(h uint64) bool {
	fq, fr := f.split(h)
	return f.insertQR(fq, fr)
}

// insertQR inserts an explicit (quotient, remainder) pair; Resize uses it to
// move elements without access to the original keys.
func (f *Filter) insertQR(fq, fr uint64) bool {
	if f.count == f.mask+1 {
		return false
	}
	tfq := f.getSlot(fq)
	entry := fr << 3

	if isEmpty(tfq) {
		f.setSlot(fq, entry|occupiedBit)
		f.count++
		return true
	}
	wasOccupied := isOccupied(tfq)
	if !wasOccupied {
		f.setSlot(fq, tfq|occupiedBit)
	}
	start := f.findRunIndex(fq)
	s := start
	if wasOccupied {
		// Find the insertion point in the sorted run.
		for {
			rem := remainder(f.getSlot(s))
			if rem >= fr {
				break
			}
			s = f.incr(s)
			if !isContinuation(f.getSlot(s)) {
				break
			}
		}
		if s == start {
			// New run head: the old head becomes a continuation.
			old := f.getSlot(start)
			f.setSlot(start, old|continuationBit)
		} else {
			entry |= continuationBit
		}
	}
	if s != fq {
		entry |= shiftedBit
	}
	f.insertInto(s, entry)
	f.count++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter) Contains(h uint64) bool {
	fq, fr := f.split(h)
	if !isOccupied(f.getSlot(fq)) {
		return false
	}
	s := f.findRunIndex(fq)
	for {
		rem := remainder(f.getSlot(s))
		if rem == fr {
			return true
		}
		if rem > fr {
			return false // runs are sorted
		}
		s = f.incr(s)
		if !isContinuation(f.getSlot(s)) {
			return false
		}
	}
}

// Remove deletes one previously inserted instance of the pre-hashed key h,
// returning false if its fingerprint is absent.
func (f *Filter) Remove(h uint64) bool {
	fq, fr := f.split(h)
	tfq := f.getSlot(fq)
	if !isOccupied(tfq) || f.count == 0 {
		return false
	}
	start := f.findRunIndex(fq)
	s := start
	for {
		rem := remainder(f.getSlot(s))
		if rem == fr {
			break
		}
		if rem > fr {
			return false
		}
		s = f.incr(s)
		if !isContinuation(f.getSlot(s)) {
			return false
		}
	}

	kill := f.getSlot(s)
	replaceRunStart := isRunStart(kill)

	// Deleting the only element of its run clears the quotient's occupied bit.
	if replaceRunStart {
		next := f.getSlot(f.incr(s))
		if !isContinuation(next) {
			f.setSlot(fq, f.getSlot(fq)&^occupiedBit)
		}
	}

	f.deleteEntry(s, fq)

	if replaceRunStart {
		next := f.getSlot(s)
		updated := next
		if isContinuation(updated) {
			// The run's second element is the new head.
			updated &^= continuationBit
		}
		if s == fq && isRunStart(updated) {
			// The new head landed in its canonical slot.
			updated &^= shiftedBit
		}
		if updated != next {
			f.setSlot(s, updated)
		}
	}
	f.count--
	return true
}

// deleteEntry removes the element at slot s (quotient quot) and shifts the
// remainder of its cluster left by one slot, fixing up elements that slide
// into their canonical slots.
func (f *Filter) deleteEntry(s, quot uint64) {
	curr := f.getSlot(s)
	sp := f.incr(s)
	orig := s
	for {
		next := f.getSlot(sp)
		currOccupied := isOccupied(curr)
		if isEmpty(next) || isClusterStart(next) || sp == orig {
			f.setSlot(s, 0)
			return
		}
		updatedNext := next
		if isRunStart(next) {
			// Track which quotient's run is sliding: advance to the next
			// occupied quotient.
			for {
				quot = f.incr(quot)
				if isOccupied(f.getSlot(quot)) {
					break
				}
			}
			if currOccupied && quot == s {
				// The run head slides into its canonical slot.
				updatedNext &^= shiftedBit
			}
		}
		if currOccupied {
			updatedNext |= occupiedBit
		} else {
			updatedNext &^= occupiedBit
		}
		f.setSlot(s, updatedNext)
		s = sp
		sp = f.incr(sp)
		curr = next
	}
}

// Count returns the number of remainders currently stored.
func (f *Filter) Count() uint64 { return f.count }

// Capacity returns the total number of slots. Practical operation tops out
// at ≈95% of this (the paper's recommended maximum), beyond which cluster
// scans dominate.
func (f *Filter) Capacity() uint64 { return f.mask + 1 }

// LoadFactor returns Count divided by Capacity.
func (f *Filter) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the in-memory footprint: width bytes of remainder plus
// one metadata byte per slot. SizeBitsPacked gives the idealized layout.
func (f *Filter) SizeBytes() uint64 {
	return uint64(len(f.remainders)) + uint64(len(f.meta))
}

// SizeBitsPacked returns the bit count of the canonical packed layout,
// (r+3) bits per slot, used for space-accounting comparisons.
func (f *Filter) SizeBitsPacked() uint64 { return (f.mask + 1) * uint64(f.rbits+3) }

// Quotients enumerates the filter's contents as (quotient, remainder) pairs,
// invoking fn for each stored element. Enumeration is what makes quotient
// filters resizable and mergeable without access to the original keys.
func (f *Filter) Quotients(fn func(fq, fr uint64)) {
	if f.count == 0 {
		return
	}
	// Find a cluster start to anchor quotient tracking (the table is
	// circular, so scanning from slot 0 naively would mis-attribute a
	// cluster that wraps). The scan is bounded: a non-full table always has
	// an empty slot, which also resets tracking.
	anchor := uint64(0)
	for steps := f.mask + 1; steps > 0 && isShifted(f.getSlot(anchor)); steps-- {
		anchor = f.decr(anchor)
	}
	size := f.mask + 1
	var quot uint64
	var runQuots []uint64 // pending occupied quotients in the current cluster
	for i := uint64(0); i < size; i++ {
		idx := (anchor + i) & f.mask
		elt := f.getSlot(idx)
		if isOccupied(elt) {
			runQuots = append(runQuots, idx)
		}
		if isEmpty(elt) {
			runQuots = runQuots[:0]
			continue
		}
		if isRunStart(elt) {
			quot = runQuots[0]
			runQuots = runQuots[1:]
		}
		fn(quot, remainder(elt))
	}
}

// Resize returns a new filter with double the slots containing every element
// of f — the advanced feature the VQF gives up (paper §1, Limitations). The
// classic doubling trick moves the top remainder bit into the quotient: the
// new filter answers queries for exactly the keys inserted into the old one
// (both split the same q+r hash bits), at the cost of one remainder bit, so
// the false-positive rate roughly doubles. Resizing below 1 remainder bit is
// not possible, nor is growing past MaxQBits; Resize returns nil in either
// case.
func (f *Filter) Resize() *Filter {
	if f.rbits <= 1 || f.qbits >= MaxQBits {
		return nil
	}
	g := mustNew(f.qbits+1, f.rbits-1)
	f.Quotients(func(fq, fr uint64) {
		newFq := fq<<1 | fr>>(f.rbits-1)
		newFr := fr & (f.rmask >> 1)
		g.insertQR(newFq, newFr)
	})
	return g
}
