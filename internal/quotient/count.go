package quotient

// CountOf returns the number of stored instances of the pre-hashed key h's
// fingerprint (runs are sorted with duplicates adjacent, so this is a
// bounded scan of one run).
func (f *Filter) CountOf(h uint64) uint64 {
	fq, fr := f.split(h)
	if !isOccupied(f.getSlot(fq)) {
		return 0
	}
	s := f.findRunIndex(fq)
	var n uint64
	for {
		rem := remainder(f.getSlot(s))
		if rem == fr {
			n++
		} else if rem > fr {
			return n
		}
		s = f.incr(s)
		if !isContinuation(f.getSlot(s)) {
			return n
		}
	}
}
