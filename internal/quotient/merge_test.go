package quotient

import (
	"math/rand"
	"testing"
)

func TestMergePreservesMembership(t *testing.T) {
	a, b := mustNew(12, 8), mustNew(12, 8)
	rng := rand.New(rand.NewSource(1))
	var aKeys, bKeys []uint64
	for len(aKeys) < 1200 {
		h := rng.Uint64()
		if a.Insert(h) {
			aKeys = append(aKeys, h)
		}
	}
	for len(bKeys) < 1500 {
		h := rng.Uint64()
		if b.Insert(h) {
			bKeys = append(bKeys, h)
		}
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d, want %d", m.Count(), a.Count()+b.Count())
	}
	for _, h := range append(aKeys, bKeys...) {
		if !m.Contains(h) {
			t.Fatal("false negative after merge")
		}
	}
	// Deletes work on the merged filter.
	if !m.Remove(aKeys[0]) || !m.Remove(bKeys[0]) {
		t.Fatal("remove failed on merged filter")
	}
}

func TestMergeGeometryMismatch(t *testing.T) {
	if _, err := Merge(mustNew(10, 8), mustNew(11, 8)); err == nil {
		t.Error("merge of mismatched qbits succeeded")
	}
	if _, err := Merge(mustNew(10, 8), mustNew(10, 16)); err == nil {
		t.Error("merge of mismatched rbits succeeded")
	}
}

func TestMergeOverflowRejected(t *testing.T) {
	a, b := mustNew(6, 8), mustNew(6, 8)
	rng := rand.New(rand.NewSource(2))
	for a.LoadFactor() < 0.7 {
		a.Insert(rng.Uint64())
	}
	for b.LoadFactor() < 0.7 {
		b.Insert(rng.Uint64())
	}
	if _, err := Merge(a, b); err == nil {
		t.Error("overflowing merge succeeded")
	}
	// MergeResize handles it.
	m, err := MergeResize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 2*a.Capacity() {
		t.Fatalf("resized merge capacity %d", m.Capacity())
	}
}

func TestMergeResizePreservesMembership(t *testing.T) {
	a, b := mustNew(10, 8), mustNew(10, 8)
	rng := rand.New(rand.NewSource(3))
	var keys []uint64
	for len(keys) < 600 {
		h := rng.Uint64()
		if a.Insert(h) {
			keys = append(keys, h)
		}
	}
	for len(keys) < 1200 {
		h := rng.Uint64()
		if b.Insert(h) {
			keys = append(keys, h)
		}
	}
	m, err := MergeResize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range keys {
		if !m.Contains(h) {
			t.Fatal("false negative after resizing merge")
		}
	}
}
