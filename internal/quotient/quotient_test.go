package quotient

import (
	"math/rand"
	"testing"
)

func TestInsertContainsBasic(t *testing.T) {
	f := mustNew(10, 8)
	keys := []uint64{0, 1, 0xdeadbeef, 1 << 40, ^uint64(0)}
	for _, h := range keys {
		if !f.Insert(h) {
			t.Fatalf("Insert(%#x) failed", h)
		}
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("Contains(%#x) false after insert", h)
		}
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestNoFalseNegativesAt95(t *testing.T) {
	f := mustNew(14, 8)
	rng := rand.New(rand.NewSource(1))
	n := f.Capacity() * 95 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at LF %.3f", f.LoadFactor())
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := mustNew(14, 8)
	rng := rand.New(rand.NewSource(2))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Analytic QF bound: ≈ α·2⁻ʳ = 0.9/256 ≈ 0.0035; allow 2× slack.
	if rate > 0.007 {
		t.Errorf("FPR = %.5f too high", rate)
	}
	if rate == 0 {
		t.Error("FPR of exactly 0 implausible")
	}
}

// TestModelBasedOps is the main correctness test: random inserts, deletes of
// known-inserted keys, and lookups, validated against an exact multiset of
// fingerprints. It exercises run sorting, cluster shifting, wraparound, and
// the delete FSM.
func TestModelBasedOps(t *testing.T) {
	f := mustNew(8, 8) // tiny: 256 slots, forces dense clusters and wraparound
	rng := rand.New(rand.NewSource(3))
	type fpKey struct{ fq, fr uint64 }
	model := map[fpKey]int{}
	var live []uint64
	for step := 0; step < 200000; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert
			if f.LoadFactor() > 0.95 {
				continue
			}
			h := rng.Uint64()
			fq, fr := f.split(h)
			if !f.Insert(h) {
				t.Fatalf("step %d: insert failed at LF %.3f", step, f.LoadFactor())
			}
			model[fpKey{fq, fr}]++
			live = append(live, h)
		case r < 7: // remove a previously inserted key
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			fq, fr := f.split(h)
			k := fpKey{fq, fr}
			if !f.Remove(h) {
				t.Fatalf("step %d: remove of inserted key failed (model count %d)", step, model[k])
			}
			model[k]--
			if model[k] == 0 {
				delete(model, k)
			}
		default: // lookups
			if len(live) > 0 {
				h := live[rng.Intn(len(live))]
				if !f.Contains(h) {
					t.Fatalf("step %d: false negative", step)
				}
			}
			// A random probe must answer exactly per the fingerprint model
			// (the filter is exact at the fingerprint level).
			h := rng.Uint64()
			fq, fr := f.split(h)
			want := model[fpKey{fq, fr}] > 0
			if got := f.Contains(h); got != want {
				t.Fatalf("step %d: Contains=%v, fingerprint model says %v", step, got, want)
			}
		}
		if step%4096 == 0 {
			var total int
			for _, c := range model {
				total += c
			}
			if f.Count() != uint64(total) {
				t.Fatalf("step %d: Count=%d model=%d", step, f.Count(), total)
			}
		}
	}
}

func TestDeleteHeavyChurnAtHighLoad(t *testing.T) {
	// Sustained insert/delete churn at 90% load — the Table 3 write-heavy
	// regime — must preserve exact fingerprint-level behaviour.
	f := mustNew(10, 8)
	rng := rand.New(rand.NewSource(4))
	var live []uint64
	for f.LoadFactor() < 0.90 {
		h := rng.Uint64()
		if f.Insert(h) {
			live = append(live, h)
		}
	}
	for step := 0; step < 50000; step++ {
		i := rng.Intn(len(live))
		if !f.Remove(live[i]) {
			t.Fatalf("step %d: remove failed", step)
		}
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("step %d: insert failed at LF %.3f", step, f.LoadFactor())
		}
		live[i] = h
	}
	for _, h := range live {
		if !f.Contains(h) {
			t.Fatal("false negative after churn")
		}
	}
}

func TestDuplicatesMultiset(t *testing.T) {
	f := mustNew(8, 8)
	const h = 0x123456789abcdef0
	for i := 0; i < 5; i++ {
		if !f.Insert(h) {
			t.Fatalf("duplicate insert %d failed", i)
		}
	}
	if f.Count() != 5 {
		t.Fatalf("Count = %d", f.Count())
	}
	for i := 0; i < 5; i++ {
		if !f.Contains(h) {
			t.Fatal("key missing")
		}
		if !f.Remove(h) {
			t.Fatalf("duplicate remove %d failed", i)
		}
	}
	if f.Contains(h) || f.Remove(h) {
		t.Error("key still present after removing all copies")
	}
}

func TestWraparoundCluster(t *testing.T) {
	// Force a cluster that wraps the end of the table: insert many keys with
	// quotients at the top of a tiny table.
	f := mustNew(4, 8) // 16 slots
	var keys []uint64
	for i := 0; i < 8; i++ {
		// quotient 14 or 15, distinct remainders
		h := uint64(14+(i&1))<<8 | uint64(i*17+1)
		if !f.Insert(h) {
			t.Fatalf("insert %d failed", i)
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("false negative for wrapped key %#x", h)
		}
	}
	// Delete them all in mixed order; each must succeed.
	order := []int{3, 0, 7, 1, 5, 2, 6, 4}
	for _, i := range order {
		if !f.Remove(keys[i]) {
			t.Fatalf("remove of wrapped key %#x failed", keys[i])
		}
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d after removing all", f.Count())
	}
}

func TestQuotientsEnumeration(t *testing.T) {
	f := mustNew(10, 8)
	rng := rand.New(rand.NewSource(5))
	type fpKey struct{ fq, fr uint64 }
	model := map[fpKey]int{}
	for i := 0; i < 700; i++ {
		h := rng.Uint64()
		fq, fr := f.split(h)
		f.Insert(h)
		model[fpKey{fq, fr}]++
	}
	got := map[fpKey]int{}
	f.Quotients(func(fq, fr uint64) { got[fpKey{fq, fr}]++ })
	if len(got) != len(model) {
		t.Fatalf("enumerated %d distinct pairs, want %d", len(got), len(model))
	}
	for k, n := range model {
		if got[k] != n {
			t.Fatalf("pair (%d,%d): enumerated %d, want %d", k.fq, k.fr, got[k], n)
		}
	}
}

func TestResizePreservesMembership(t *testing.T) {
	f := mustNew(10, 8)
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 0, 900)
	for len(keys) < 900 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	g := f.Resize()
	if g == nil {
		t.Fatal("Resize returned nil")
	}
	if g.Capacity() != 2*f.Capacity() {
		t.Fatalf("resized capacity %d, want %d", g.Capacity(), 2*f.Capacity())
	}
	if g.Count() != f.Count() {
		t.Fatalf("resized count %d, want %d", g.Count(), f.Count())
	}
	for _, h := range keys {
		if !g.Contains(h) {
			t.Fatal("false negative after resize")
		}
	}
	// Deletes still work in the resized filter.
	for _, h := range keys[:100] {
		if !g.Remove(h) {
			t.Fatal("remove failed after resize")
		}
	}
}

func TestResizeChain(t *testing.T) {
	f := mustNew(6, 8)
	rng := rand.New(rand.NewSource(7))
	var keys []uint64
	for len(keys) < 50 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	// Double three times; membership must survive each step.
	for step := 0; step < 3; step++ {
		f = f.Resize()
		if f == nil {
			t.Fatal("resize chain broke")
		}
		for _, h := range keys {
			if !f.Contains(h) {
				t.Fatalf("false negative after %d resizes", step+1)
			}
		}
	}
}

func TestRemoveAbsent(t *testing.T) {
	f := mustNew(12, 8)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		f.Insert(rng.Uint64())
	}
	removed := 0
	for i := 0; i < 10000; i++ {
		if f.Remove(rng.Uint64()) {
			removed++
		}
	}
	if removed > 100 { // bounded by fingerprint-collision probability
		t.Errorf("%d/10000 absent removes succeeded", removed)
	}
}

func TestSizeAccounting(t *testing.T) {
	f := mustNew(10, 8)
	if f.SizeBitsPacked() != 1024*11 {
		t.Errorf("packed bits = %d, want %d", f.SizeBitsPacked(), 1024*11)
	}
	if f.SizeBytes() != 1024+1024 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
	f16 := mustNew(10, 16)
	if f16.SizeBitsPacked() != 1024*19 {
		t.Errorf("packed bits (16) = %d", f16.SizeBitsPacked())
	}
}

func TestSixteenBitRemainders(t *testing.T) {
	f := mustNew(12, 16)
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 0, 3000)
	for len(keys) < 3000 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative (16-bit)")
		}
	}
	fp := 0
	for i := 0; i < 500000; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	if fp > 40 { // expect ≈ 500000·0.73·2⁻¹⁶ ≈ 6
		t.Errorf("%d false positives in 500k probes (16-bit)", fp)
	}
}

func BenchmarkInsertTo50(b *testing.B) { benchInsertAt(b, 50) }
func BenchmarkInsertTo90(b *testing.B) { benchInsertAt(b, 90) }

func benchInsertAt(b *testing.B, pct uint64) {
	f := mustNew(18, 8)
	rng := rand.New(rand.NewSource(10))
	target := f.Capacity() * pct / 100
	for f.Count() < target {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Insert(rng.Uint64()) {
			b.Fatal("full")
		}
		if f.LoadFactor() > 0.96 {
			b.StopTimer()
			f = mustNew(18, 8)
			for f.Count() < target {
				f.Insert(rng.Uint64())
			}
			b.StartTimer()
		}
	}
}

func BenchmarkLookupAt90(b *testing.B) {
	f := mustNew(18, 8)
	rng := rand.New(rand.NewSource(11))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
