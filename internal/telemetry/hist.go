// Package telemetry is the latency and rare-event observation substrate
// shared by every filter variant: sampled per-operation latency recording
// into log-bucketed HDR-style histograms, a bounded lock-free ring of
// structured rare events, and runtime/trace annotations — all stdlib-only
// and zero-alloc on the hot path.
//
// The histograms follow the HDR ("high dynamic range") layout: values are
// nanoseconds, bucket boundaries grow geometrically by octave, and each
// octave is split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 2^-subBits (12.5%) across the whole 1 ns – ~18 min
// range with a fixed 304-bucket table. Recording is striped over small
// banks of atomic counters so concurrent recorders on different keys
// usually touch different cache lines; snapshots sum the stripes with
// atomic loads and never block recorders.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram geometry. subBits linear sub-buckets per octave bound the
// relative error of any reconstructed quantile at 2^-subBits; maxExp caps
// the recordable value at 2^maxExp-1 ns (~18 minutes) — anything larger is
// clamped into the top bucket rather than dropped.
const (
	subBits  = 3
	subCount = 1 << subBits
	maxExp   = 40
	// HistBuckets is the fixed bucket-table size: subCount buckets for
	// values below subCount, then subCount per octave for octaves
	// subBits..maxExp-1.
	HistBuckets = (maxExp - subBits + 1) * subCount
)

// maxValue is the largest recordable value; larger inputs clamp to it.
const maxValue = uint64(1)<<maxExp - 1

// BucketIndex returns the histogram bucket holding value v (nanoseconds).
// Buckets are monotone in v: BucketIndex(a) <= BucketIndex(b) for a <= b.
func BucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	if v > maxValue {
		v = maxValue
	}
	top := bits.Len64(v) - 1 // >= subBits
	return (top-subBits+1)*subCount + int((v>>(top-subBits))&(subCount-1))
}

// BucketUpper returns the largest value that lands in bucket i — the
// inclusive upper edge used for Prometheus le="..." boundaries and for
// quantile reconstruction (quantiles report a bucket's upper edge, so they
// over-estimate by at most one bucket width).
func BucketUpper(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	oct := i / subCount // 1-based octave group
	sub := uint64(i % subCount)
	top := oct + subBits - 1
	lower := uint64(1)<<top + sub<<(top-subBits)
	return lower + uint64(1)<<(top-subBits) - 1
}

// histStripes spreads concurrent recorders over independent counter banks.
// Recording is already decimated by sampling, so a small stripe count
// suffices; the selector is the operation's key hash.
const (
	histStripes    = 4
	histStripeMask = histStripes - 1
)

// histStripe is one bank: a full bucket table plus the value sum. Stripes
// are held in an array inside Hist, so they are contiguous; the table is
// large enough (2.4 KiB) that cross-stripe false sharing is confined to
// the boundary lines.
type histStripe struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Hist is a mergeable concurrent latency histogram. The zero value is
// ready to use. Record never allocates and never blocks; Snapshot sums
// the stripes with atomic loads and can run alongside recorders.
type Hist struct {
	s [histStripes]histStripe
}

// Record adds one observation of v nanoseconds on the stripe selected by
// sel (any well-distributed value; callers pass the operation's key hash).
func (h *Hist) Record(sel, v uint64) {
	st := &h.s[sel&histStripeMask]
	st.counts[BucketIndex(v)].Add(1)
	st.sum.Add(v)
}

// RecordN adds n observations of v nanoseconds whose true total is sum —
// the batch form: one timed batch call of n keys records n per-key
// observations of the amortized latency while keeping the exact total.
func (h *Hist) RecordN(sel, v, n, sum uint64) {
	st := &h.s[sel&histStripeMask]
	st.counts[BucketIndex(v)].Add(n)
	st.sum.Add(sum)
}

// Snapshot returns a consistent-enough copy of the histogram: each bucket
// is summed with atomic loads, so counts recorded during the scan may or
// may not appear, but every returned bucket value is exact and monotone
// across successive snapshots.
func (h *Hist) Snapshot() HistSnapshot {
	var out HistSnapshot
	out.Counts = make([]uint64, HistBuckets)
	for i := range h.s {
		st := &h.s[i]
		for b := 0; b < HistBuckets; b++ {
			out.Counts[b] += st.counts[b].Load()
		}
		out.Sum += st.sum.Load()
	}
	for _, c := range out.Counts {
		out.Count += c
	}
	return out
}

// HistSnapshot is a point-in-time reading of a Hist: per-bucket counts
// (indexed by BucketIndex, upper edges from BucketUpper), the observation
// count, and the exact value sum.
type HistSnapshot struct {
	Counts []uint64 `json:"-"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum_ns"`
}

// Merge returns the bucket-wise sum of two snapshots (histograms of the
// same fixed geometry always merge exactly).
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	if s.Counts == nil {
		return other
	}
	if other.Counts == nil {
		return s
	}
	m := HistSnapshot{Counts: make([]uint64, HistBuckets), Count: s.Count + other.Count, Sum: s.Sum + other.Sum}
	copy(m.Counts, s.Counts)
	for i, c := range other.Counts {
		m.Counts[i] += c
	}
	return m
}

// Quantile returns the upper edge of the bucket containing the p-th
// (0 < p <= 1) observation, in nanoseconds — an over-estimate by at most
// one bucket width (relative error <= 2^-subBits). Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(p * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Summary is the compact quantile digest embedded in snapshots and bench
// artifacts: observation count, mean, and the p50/p90/p99/p999 upper-edge
// quantiles, all in nanoseconds.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50    uint64  `json:"p50_ns"`
	P90    uint64  `json:"p90_ns"`
	P99    uint64  `json:"p99_ns"`
	P999   uint64  `json:"p999_ns"`
}

// Summary digests the snapshot into its standard quantile set.
func (s HistSnapshot) Summary() Summary {
	out := Summary{Count: s.Count}
	if s.Count == 0 {
		return out
	}
	out.MeanNs = float64(s.Sum) / float64(s.Count)
	out.P50 = s.Quantile(0.50)
	out.P90 = s.Quantile(0.90)
	out.P99 = s.Quantile(0.99)
	out.P999 = s.Quantile(0.999)
	return out
}
