package telemetry

import (
	"sync/atomic"
	"time"
)

// EventKind classifies a structured rare event. Events carry three
// kind-specific numeric arguments (A, B, C) instead of strings: every slot
// field is a machine word written atomically, which keeps the ring
// race-clean and allocation-free without locking writers.
type EventKind uint64

const (
	EvNone EventKind = iota
	// EvElasticGrow: a sequential elastic cascade appended a level.
	// A = new level index, B = allocated slots, C = build time ns.
	EvElasticGrow
	// EvElasticSwap: a concurrent elastic cascade published a new level
	// list via atomic pointer swap. A/B/C as EvElasticGrow.
	EvElasticSwap
	// EvSeqlockFallback: an optimistic block read exhausted its retry
	// budget and fell back to the block lock. A = primary block index,
	// B = retries.
	EvSeqlockFallback
	// EvEvictionRollback: a cuckoo/morton eviction walk failed and rolled
	// back. A = walk length.
	EvEvictionRollback
	// EvAsmDispatch: the assembly-kernel selection changed (or was set at
	// init). A = asm kernels enabled, B = fused fast probes enabled,
	// C = assembly present in this build (1/0 each).
	EvAsmDispatch
	// EvShardClaimStall: a sharded batch finished with workers that
	// claimed no work — the shard partition was too skewed to feed the
	// pool. A = idle workers, B = pool size, C = batch keys.
	EvShardClaimStall
	// EvCompactStart: a cascade compaction began. A = levels before,
	// B = live items in the frozen (non-newest) levels.
	EvCompactStart
	// EvCompactFinish: a cascade compaction finished. A = levels merged
	// away, B = levels after, C = duration ns.
	EvCompactFinish
	// EvFreezeStart: a cascade freeze (frozen VQF runs rebuilding into
	// immutable fuse levels) began. A = levels before, B = live items in
	// the qualifying runs.
	EvFreezeStart
	// EvFreezeFinish: a cascade freeze finished. A = source levels frozen
	// away, B = levels after, C = duration ns.
	EvFreezeFinish
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"none",
	"elastic-grow",
	"elastic-swap",
	"seqlock-fallback",
	"eviction-rollback",
	"asm-dispatch",
	"shard-claim-stall",
	"compact-start",
	"compact-finish",
	"freeze-start",
	"freeze-finish",
}

// String returns the event kind's stable identifier (used in JSON).
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one drained ring entry.
type Event struct {
	// Seq is the event's global sequence number in its ring (1-based,
	// monotone; gaps mean overwritten entries).
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the recording wall-clock time.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Kind is the EventKind identifier string.
	Kind string `json:"kind"`
	// A, B, C are the kind-specific arguments (see the EventKind docs).
	A uint64 `json:"a"`
	B uint64 `json:"b"`
	C uint64 `json:"c"`
}

// ringSlot holds one event with every field an atomic word. seq doubles as
// the publication flag: 0 while a writer is filling the slot, the event's
// 1-based sequence number once published. A reader validates seq before
// and after loading the payload and discards the slot on mismatch.
type ringSlot struct {
	seq  atomic.Uint64
	t    atomic.Int64
	kind atomic.Uint64
	a    atomic.Uint64
	b    atomic.Uint64
	c    atomic.Uint64
}

// Ring is a bounded lock-free overwrite ring of structured events.
// Recording claims a slot with one atomic add and fills it with atomic
// stores — no locks, no allocation — so it is safe on any path, though it
// is meant for rare events (growths, fallbacks, stalls), not per-op
// traffic. When the ring wraps, the oldest events are overwritten.
//
// Events is best-effort on two counts: a drain concurrent with heavy
// recording can miss slots being rewritten (they fail seq validation and
// are skipped), and a writer that stalls mid-fill leaves its slot
// unpublished until it finishes. Neither perturbs recorders.
type Ring struct {
	slots []ringSlot
	mask  uint64
	widx  atomic.Uint64
}

// DefaultRingSize is the event capacity rings are created with unless a
// caller asks otherwise.
const DefaultRingSize = 256

// NewRing returns a ring holding the most recent n events (rounded up to
// a power of two, minimum 16).
func NewRing(n int) *Ring {
	size := 16
	for size < n && size < 1<<20 {
		size <<= 1
	}
	return &Ring{slots: make([]ringSlot, size), mask: uint64(size) - 1}
}

// Record appends an event. Safe for any number of concurrent recorders;
// never blocks, never allocates.
func (r *Ring) Record(kind EventKind, a, b, c uint64) {
	if r == nil {
		return
	}
	seq := r.widx.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0)
	s.t.Store(time.Now().UnixNano())
	s.kind.Store(uint64(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Events returns the ring's current contents, oldest first, without
// consuming them. Slots being concurrently rewritten are skipped.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	w := r.widx.Load()
	n := uint64(len(r.slots))
	start := uint64(1)
	if w > n {
		start = w - n + 1
	}
	out := make([]Event, 0, w-start+1)
	for seq := start; seq <= w; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			continue // unpublished or already overwritten
		}
		ev := Event{
			Seq:          seq,
			TimeUnixNano: s.t.Load(),
			Kind:         EventKind(s.kind.Load()).String(),
			A:            s.a.Load(),
			B:            s.b.Load(),
			C:            s.c.Load(),
		}
		if s.seq.Load() != seq {
			continue // rewritten mid-read; payload may be torn
		}
		out = append(out, ev)
	}
	return out
}

// global is the process-wide ring for events not tied to one filter
// (kernel dispatch decisions at init, for example).
var global = NewRing(1024)

// Global returns the process-wide event ring.
func Global() *Ring { return global }
