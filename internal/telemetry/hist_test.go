package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketMath checks the bucket table's structural invariants: indices
// are monotone in the value, BucketUpper inverts BucketIndex, edges are
// strictly increasing, and the relative bucket width is bounded by
// 2^-subBits.
func TestBucketMath(t *testing.T) {
	if BucketIndex(0) != 0 || BucketIndex(maxValue) != HistBuckets-1 {
		t.Fatalf("range: BucketIndex(0)=%d, BucketIndex(max)=%d of %d buckets",
			BucketIndex(0), BucketIndex(maxValue), HistBuckets)
	}
	if BucketIndex(maxValue+1) != HistBuckets-1 || BucketIndex(^uint64(0)) != HistBuckets-1 {
		t.Fatal("values beyond maxValue must clamp into the top bucket")
	}
	prev := uint64(0)
	for i := 0; i < HistBuckets; i++ {
		up := BucketUpper(i)
		if i > 0 && up <= prev {
			t.Fatalf("bucket %d: upper edge %d not above previous %d", i, up, prev)
		}
		if got := BucketIndex(up); got != i {
			t.Fatalf("bucket %d: BucketIndex(BucketUpper)=%d", i, got)
		}
		if got := BucketIndex(prev + 1); i > 0 && got != i {
			t.Fatalf("bucket %d: lower edge %d maps to bucket %d", i, prev+1, got)
		}
		// Width bound: (upper - lower + 1) / lower <= 2^-subBits for the
		// geometric octaves.
		if i >= 2*subCount {
			lower := prev + 1
			if width := up - lower + 1; width*subCount > lower {
				t.Fatalf("bucket %d: width %d exceeds %d/%d", i, width, lower, subCount)
			}
		}
		prev = up
	}
	// Spot-check the documented layout: values below subCount are exact.
	for v := uint64(0); v < subCount; v++ {
		if BucketIndex(v) != int(v) || BucketUpper(int(v)) != v {
			t.Fatalf("sub-%d value %d not exact", subCount, v)
		}
	}
}

// TestQuantileVsOracle records a heavy-tailed sample into a Hist and
// checks every standard quantile against the sorted-sample oracle: the
// histogram answer must land in the oracle value's bucket or the next one
// (the "within one bucket" accuracy contract).
func TestQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Hist
	raw := make([]uint64, 200_000)
	for i := range raw {
		// Log-uniform over ~3 decades with a spiky tail, like a latency mix
		// of cache hits and fallback paths.
		v := uint64(50 + rng.Intn(200))
		if rng.Intn(100) == 0 {
			v = uint64(5_000 + rng.Intn(100_000))
		}
		raw[i] = v
		h.Record(uint64(rng.Int63()), v)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(raw)) {
		t.Fatalf("count %d want %d", snap.Count, len(raw))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(p * float64(len(raw)))
		if rank < 1 {
			rank = 1
		}
		oracle := raw[rank-1]
		got := snap.Quantile(p)
		db := BucketIndex(got) - BucketIndex(oracle)
		if db < 0 || db > 1 {
			t.Errorf("p%g: hist %d (bucket %d) vs oracle %d (bucket %d): delta %d buckets",
				p*100, got, BucketIndex(got), oracle, BucketIndex(oracle), db)
		}
	}
	sum := uint64(0)
	for _, v := range raw {
		sum += v
	}
	if snap.Sum != sum {
		t.Fatalf("sum %d want %d", snap.Sum, sum)
	}
}

// TestHistConcurrentMerge hammers one Hist from several goroutines while a
// reader snapshots mid-flight, then verifies the final snapshot holds
// exactly the recorded observations and that merging per-goroutine
// histograms reproduces it bucket for bucket. Run under -race this is the
// histogram-recording race gate.
func TestHistConcurrentMerge(t *testing.T) {
	const workers = 8
	const perWorker = 50_000
	var shared Hist
	locals := make([]*Hist, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		locals[w] = &Hist{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				sel := uint64(rng.Int63())
				v := uint64(rng.Intn(1 << 20))
				shared.Record(sel, v)
				locals[w].Record(sel, v)
			}
		}(w)
	}
	// Concurrent reader: snapshots must stay monotone and never exceed the
	// final total.
	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := uint64(0)
		for i := 0; i < 100; i++ {
			c := shared.Snapshot().Count
			if c < prev {
				t.Errorf("snapshot count went backwards: %d after %d", c, prev)
				return
			}
			prev = c
		}
	}()
	wg.Wait()
	<-done

	want := HistSnapshot{}
	for _, l := range locals {
		want = want.Merge(l.Snapshot())
	}
	got := shared.Snapshot()
	if got.Count != workers*perWorker || got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("totals: shared %d/%d, merged %d/%d", got.Count, got.Sum, want.Count, want.Sum)
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: shared %d merged %d", i, got.Counts[i], want.Counts[i])
		}
	}
}

// TestRecordZeroAlloc is the hot-path allocation guard: the sampled record
// call — gate check plus histogram record — must not allocate, on either
// gate flavor.
func TestRecordZeroAlloc(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		r := NewRecorder(1, concurrent)
		h := uint64(0)
		if n := testing.AllocsPerRun(1000, func() {
			h += 0x9e3779b97f4a7c15
			if r.Sample(h) {
				r.Record(OpLookup, h, 123*time.Nanosecond)
			}
		}); n != 0 {
			t.Fatalf("concurrent=%v: %v allocs per sampled record", concurrent, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			r.RecordBatch(OpLookupBatch, h, time.Millisecond, 1024)
		}); n != 0 {
			t.Fatalf("concurrent=%v: %v allocs per batch record", concurrent, n)
		}
	}
	// Disabled recorder: the nil path must also be alloc-free.
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		if nilRec.Sample(42) {
			t.Fatal("nil recorder sampled")
		}
	}); n != 0 {
		t.Fatalf("nil recorder: %v allocs", n)
	}
}

// TestSamplerRates checks both gate flavors against their contracts: the
// sequential countdown is exactly 1-in-rate; the concurrent phase-rotated
// gate is 1-in-rate in expectation over uniform hashes.
func TestSamplerRates(t *testing.T) {
	if r := NewRecorder(0, false); r != nil {
		t.Fatal("rate 0 must disable the recorder")
	}
	if NewRecorder(48, true).Rate() != 64 {
		t.Fatal("rates must round up to a power of two")
	}

	seq := NewRecorder(64, false)
	hits := 0
	for i := 0; i < 64*100; i++ {
		if seq.Sample(uint64(i)) {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("sequential gate: %d samples in %d ops at rate 64", hits, 64*100)
	}

	conc := NewRecorder(64, true)
	rng := rand.New(rand.NewSource(11))
	hits = 0
	const ops = 1 << 20
	for i := 0; i < ops; i++ {
		if conc.Sample(uint64(rng.Int63())) {
			hits++
		}
	}
	want := ops / 64
	if hits < want/2 || hits > want*2 {
		t.Fatalf("concurrent gate: %d samples in %d ops at rate 64 (want ~%d)", hits, ops, want)
	}

	// Rate 1 always samples on both flavors.
	for _, concurrent := range []bool{false, true} {
		always := NewRecorder(1, concurrent)
		for i := 0; i < 1000; i++ {
			if !always.Sample(uint64(rng.Int63())) {
				t.Fatalf("concurrent=%v: rate 1 skipped an op", concurrent)
			}
		}
	}
}

// TestPhaseRotation: a single hot key must not be permanently stuck
// unsampled — each recorded sample rotates the phase, so over enough
// distinct sampled keys the hot key's slice comes around.
func TestPhaseRotation(t *testing.T) {
	r := NewRecorder(8, true)
	rng := rand.New(rand.NewSource(3))
	hot := uint64(0xdeadbeefcafef00d)
	hotHits := 0
	for i := 0; i < 1<<16; i++ {
		r.Sample(uint64(rng.Int63())) // background traffic rotates the phase
		if r.Sample(hot) {
			hotHits++
		}
	}
	if hotHits == 0 {
		t.Fatal("hot key never sampled despite phase rotation")
	}
}
