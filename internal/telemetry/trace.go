package telemetry

import (
	"context"
	"runtime/trace"
)

// runtime/trace annotations. Both helpers are nops (returning a shared
// no-op closure, no allocation) unless the process is actively tracing,
// so they can sit on warm paths; when `go test -trace` / trace.Start is
// live, filter growth and batch phases show up as tasks and regions in
// `go tool trace`.

var noopEnd = func() {}

// Region opens a trace region named name and returns its end function.
func Region(name string) func() {
	if !trace.IsEnabled() {
		return noopEnd
	}
	return trace.StartRegion(context.Background(), name).End
}

// Task opens a trace task (with a same-named region for interval
// rendering) and returns its end function. Used around filter growth so
// the pauses the cascade introduces are attributable in `go tool trace`.
func Task(name string) func() {
	if !trace.IsEnabled() {
		return noopEnd
	}
	ctx, task := trace.NewTask(context.Background(), name)
	reg := trace.StartRegion(ctx, name)
	return func() {
		reg.End()
		task.End()
	}
}
