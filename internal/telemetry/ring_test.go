package telemetry

import (
	"sync"
	"testing"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(16)
	if r.Events() != nil && len(r.Events()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := uint64(1); i <= 5; i++ {
		r.Record(EvElasticGrow, i, i*10, i*100)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("%d events, want 5", len(evs))
	}
	for i, ev := range evs {
		want := uint64(i + 1)
		if ev.Seq != want || ev.A != want || ev.B != want*10 || ev.C != want*100 {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if ev.Kind != "elastic-grow" {
			t.Fatalf("kind %q", ev.Kind)
		}
		if ev.TimeUnixNano == 0 {
			t.Fatal("missing timestamp")
		}
		if i > 0 && ev.TimeUnixNano < evs[i-1].TimeUnixNano {
			t.Fatal("events out of time order")
		}
	}

	// Overflow: only the newest 16 survive, oldest first.
	for i := uint64(6); i <= 40; i++ {
		r.Record(EvSeqlockFallback, i, 0, 0)
	}
	evs = r.Events()
	if len(evs) != 16 {
		t.Fatalf("%d events after wrap, want 16", len(evs))
	}
	if evs[0].Seq != 25 || evs[15].Seq != 40 {
		t.Fatalf("wrap window [%d, %d], want [25, 40]", evs[0].Seq, evs[15].Seq)
	}
}

// TestRingConcurrent drives many concurrent recorders while a reader
// drains; under -race this is the event-ring race gate. Drained events
// must always be internally consistent (the A/B/C triple a writer stored
// together) even when the ring is wrapping at full speed.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := uint64(w)<<32 | uint64(i)
				r.Record(EvShardClaimStall, v, v+1, v+2)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Events() {
				if ev.B != ev.A+1 || ev.C != ev.A+2 {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWg.Wait()

	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("%d events after quiesce, want full ring of 64", len(evs))
	}
	if last := evs[len(evs)-1].Seq; last != workers*perWorker {
		t.Fatalf("last seq %d, want %d", last, workers*perWorker)
	}
}

func TestRingNil(t *testing.T) {
	var r *Ring
	r.Record(EvElasticGrow, 1, 2, 3) // must not panic
	if r.Events() != nil {
		t.Fatal("nil ring returned events")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
