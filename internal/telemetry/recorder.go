package telemetry

import (
	"sync/atomic"
	"time"
)

// Op identifies which latency histogram an observation lands in. Single-key
// and batch forms are kept separate: batch observations are per-key
// amortized latencies and would otherwise drown the single-key tail.
type Op uint8

const (
	OpInsert Op = iota
	OpLookup
	OpRemove
	OpInsertBatch
	OpLookupBatch
	OpRemoveBatch
	numRecOps
)

// DefaultSamplingRate is the 1-in-N latency sampling rate filters use
// unless configured otherwise: sparse enough that the gate (not the timer)
// is the only per-operation cost, dense enough that a p999 stabilizes
// within a few million operations.
const DefaultSamplingRate = 64

// gateStripes spreads the concurrent sampling gate's phase counters so
// recorders on different keys don't share a counter line.
const (
	gateStripes    = 16
	gateStripeMask = gateStripes - 1
)

// gate is one cache-line-padded sampling phase counter.
type gate struct {
	n atomic.Uint64
	_ [120]byte
}

// Recorder bundles a filter's sampling gate and its per-op latency
// histograms. A nil *Recorder is valid and records nothing (sampling
// disabled); all methods are nil-safe.
//
// The gate implements the cheap counter scheme the <2% overhead budget
// demands, in two flavors matching the host filter's threading contract:
//
//   - Sequential filters use an exact countdown (one non-atomic decrement
//     and a predictable branch per operation): precisely every rate-th
//     call samples.
//
//   - Concurrent filters cannot use a shared plain counter (racy) and an
//     atomic RMW per operation would cost more than the whole sampling
//     budget, so the gate is phase-rotated hashing: an operation samples
//     iff (hash ^ phase)·M has its top log2(rate) bits zero, where phase
//     is a striped counter bumped only on the rare sampled path (with a
//     plain atomic load+store — lossy under races, which only perturbs the
//     phase, never the rate). For any fixed phase exactly a 1/rate slice
//     of the hash space samples, and each recorded sample rotates the
//     phase so no key is permanently stuck sampled or unsampled. The hot
//     path costs one atomic load (a plain MOV on amd64), one multiply and
//     one compare.
type Recorder struct {
	rate       uint64
	shift      uint // 64 - log2(rate); x·M >> shift == 0 samples
	concurrent bool
	left       uint64 // sequential countdown
	gates      [gateStripes]gate
	hists      [numRecOps]Hist
}

// NewRecorder returns a recorder sampling 1 in rate operations (rate is
// rounded up to a power of two; 1 samples every operation), or nil when
// rate <= 0 (sampling disabled — the hot path then costs one nil check).
// concurrent selects the thread-safe gate; pass false only for filters
// with a single-goroutine contract.
func NewRecorder(rate int, concurrent bool) *Recorder {
	if rate <= 0 {
		return nil
	}
	p := uint64(1)
	lg := uint(0)
	for p < uint64(rate) {
		p <<= 1
		lg++
	}
	return &Recorder{rate: p, shift: 64 - lg, concurrent: concurrent, left: 1}
}

// Rate returns the effective (power-of-two) sampling rate, 0 for nil.
func (r *Recorder) Rate() int {
	if r == nil {
		return 0
	}
	return int(r.rate)
}

// Sample reports whether this operation should be timed. h is the
// operation's key hash (used by the concurrent gate; ignored by the
// sequential one). Never allocates.
func (r *Recorder) Sample(h uint64) bool {
	if r == nil {
		return false
	}
	if !r.concurrent {
		r.left--
		if r.left != 0 {
			return false
		}
		r.left = r.rate
		return true
	}
	g := &r.gates[(h>>32)&gateStripeMask]
	phase := g.n.Load()
	if ((h^phase)*0x9e3779b97f4a7c15)>>r.shift != 0 {
		return false
	}
	g.n.Store(phase + 1)
	return true
}

// Record adds one timed single-key operation. sel is the key hash (stripe
// selector). Never allocates.
func (r *Recorder) Record(op Op, sel uint64, d time.Duration) {
	if r == nil || d < 0 {
		return
	}
	r.hists[op].Record(sel, uint64(d))
}

// RecordBatch adds one timed batch call of n keys: n per-key amortized
// observations keeping the exact total. Batch calls are always recorded
// (no gate) — the timer cost amortizes over the whole batch.
func (r *Recorder) RecordBatch(op Op, sel uint64, d time.Duration, n int) {
	if r == nil || n <= 0 || d < 0 {
		return
	}
	r.hists[op].RecordN(sel, uint64(d)/uint64(n), uint64(n), uint64(d))
}

// Snapshot returns op's histogram snapshot (empty for nil recorders).
func (r *Recorder) Snapshot(op Op) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.hists[op].Snapshot()
}
