package minifilter

import (
	"math/bits"

	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Geometry of the 8-bit-fingerprint block (paper §6.1): 48 slots, 80 buckets,
// 128 metadata bits, 48 fingerprint bytes — exactly one 64-byte cache line.
const (
	B8Slots   = 48
	B8Buckets = 80
	B8Meta    = B8Slots + B8Buckets // 128

	// b8InitHi is the initial high metadata word: buckets 64..79 empty, so
	// ones at bits 0..15. The low word is all ones (buckets 0..63).
	b8InitHi = uint64(1)<<(B8Buckets-64) - 1
)

// Block8 is a mini-filter with 8-bit fingerprints. Its metadata is the
// 128-bit word (MetaHi<<64)|MetaLo holding B8Buckets one-bits (bucket
// terminators) interleaved with one zero per stored fingerprint, in bucket
// order. The zero-value Block8 is NOT valid; call Reset first (or allocate
// through the filter types, which do).
type Block8 struct {
	MetaLo uint64
	MetaHi uint64
	Fps    [B8Slots]byte
}

// Reset returns the block to the empty state: 80 bucket terminators and no
// fingerprints.
func (b *Block8) Reset() {
	b.MetaLo = ^uint64(0)
	b.MetaHi = b8InitHi
	b.Fps = [B8Slots]byte{}
}

// Occupancy returns the number of fingerprints stored in the block. The
// final bucket terminator is always the highest set metadata bit (no used
// bits lie above it), so occupancy is its position minus B8Buckets−1 — one
// bits.Len64, no select. MetaHi always holds at least the last 16
// terminators, so it is never zero.
func (b *Block8) Occupancy() uint {
	return 64 + uint(bits.Len64(b.MetaHi)) - B8Buckets
}

// Full reports whether all 48 slots are occupied.
func (b *Block8) Full() bool { return b.Occupancy() == B8Slots }

// bucketRange returns the slot range [start, end) holding bucket's
// fingerprints (paper §3.3). The range needs select(m, bucket−1) and
// select(m, bucket); since terminators are consecutive set bits, the second
// select is a find-next-set-bit from the first.
func (b *Block8) bucketRange(bucket uint) (start, end uint) {
	if bucket == 0 {
		if t := uint(bits.TrailingZeros64(b.MetaLo)); t < 64 {
			return 0, t
		}
		return 0, 64 + uint(bits.TrailingZeros64(b.MetaHi))
	}
	p := bitvec.Select128(b.MetaLo, b.MetaHi, bucket-1)
	var q uint
	if p < 64 {
		if rest := b.MetaLo >> (p + 1) << (p + 1); rest != 0 {
			q = uint(bits.TrailingZeros64(rest))
		} else {
			q = 64 + uint(bits.TrailingZeros64(b.MetaHi))
		}
	} else {
		rest := b.MetaHi >> (p - 63) << (p - 63)
		q = 64 + uint(bits.TrailingZeros64(rest))
	}
	return p - bucket + 1, q - bucket
}

// BucketCount returns the number of fingerprints currently stored in bucket.
func (b *Block8) BucketCount(bucket uint) uint {
	start, end := b.bucketRange(bucket)
	return end - start
}

// Contains reports whether fp is present in bucket. It is the VPCMPB-analog
// lookup: one SWAR match mask over the whole fingerprint array, masked down
// to the bucket's slot range.
func (b *Block8) Contains(bucket uint, fp byte) bool {
	start, end := b.bucketRange(bucket)
	if start == end {
		return false
	}
	return swar.MatchMaskBytesRange(b.Fps[:], fp, start, end) != 0
}

// find returns the slot index of one instance of fp in bucket, or -1.
func (b *Block8) find(bucket uint, fp byte) int {
	start, end := b.bucketRange(bucket)
	if start == end {
		return -1
	}
	mask := swar.MatchMaskBytesRange(b.Fps[:], fp, start, end)
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// Insert adds fp to bucket, shifting subsequent fingerprints and metadata
// bits up by one position. It returns false if the block is full. Duplicates
// are permitted (the filter is a multiset).
func (b *Block8) Insert(bucket uint, fp byte) bool {
	occ := b.Occupancy()
	if occ == B8Slots {
		return false
	}
	m := bitvec.Select128(b.MetaLo, b.MetaHi, bucket) // bucket's terminator
	z := int(m - bucket)                              // slot for the new fingerprint
	swar.ShiftBytesUp(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	b.MetaLo, b.MetaHi = bitvec.InsertZero128(b.MetaLo, b.MetaHi, m)
	return true
}

// Remove deletes one instance of fp from bucket, reversing Insert. It
// returns false if fp is not present in bucket.
func (b *Block8) Remove(bucket uint, fp byte) bool {
	l := b.find(bucket, fp)
	if l < 0 {
		return false
	}
	occ := b.Occupancy()
	m := uint(l) + bucket // metadata index of the slot's zero bit
	b.MetaLo, b.MetaHi = bitvec.RemoveBit128(b.MetaLo, b.MetaHi, m)
	swar.ShiftBytesDown(b.Fps[:], l, int(occ))
	return true
}
