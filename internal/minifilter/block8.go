package minifilter

import (
	"math/bits"

	"vqf/internal/swar"
)

// Geometry of the 8-bit-fingerprint block (paper §6.1): 48 slots, 80 buckets,
// 128 metadata bits, 48 fingerprint bytes — exactly one 64-byte cache line.
const (
	B8Slots   = 48
	B8Buckets = 80
	B8Meta    = B8Slots + B8Buckets // 128

	// b8InitHi is the initial high metadata word: buckets 64..79 empty, so
	// ones at bits 0..15. The low word is all ones (buckets 0..63).
	b8InitHi = uint64(1)<<(B8Buckets-64) - 1
)

// Block8 is a mini-filter with 8-bit fingerprints. Its metadata is the
// 128-bit word (MetaHi<<64)|MetaLo holding B8Buckets one-bits (bucket
// terminators) interleaved with one zero per stored fingerprint, in bucket
// order. Fingerprint lanes are stored word-native: byte lane i lives at bits
// 8·(i mod 8) of Fps[i/8], so the SWAR kernels run on pre-assembled words
// with no per-call repack (the byte view exists only at the serialization
// boundary). The zero-value Block8 is NOT valid; call Reset first (or
// allocate through the filter types, which do).
type Block8 struct {
	MetaLo uint64
	MetaHi uint64
	Fps    [swar.Words8]uint64
}

// Reset returns the block to the empty state: 80 bucket terminators and no
// fingerprints.
func (b *Block8) Reset() {
	b.MetaLo = ^uint64(0)
	b.MetaHi = b8InitHi
	b.Fps = [swar.Words8]uint64{}
}

// Occupancy returns the number of fingerprints stored in the block. The
// final bucket terminator is always the highest set metadata bit (no used
// bits lie above it), so occupancy is its position minus B8Buckets−1 — one
// bits.Len64, no select. MetaHi always holds at least the last 16
// terminators, so it is never zero.
func (b *Block8) Occupancy() uint {
	return 64 + uint(bits.Len64(b.MetaHi)) - B8Buckets
}

// Full reports whether all 48 slots are occupied. In plain (single-threaded)
// mode the final terminator reaches metadata bit 127 exactly when occupancy
// is 48, so fullness is the top bit of MetaHi — one load, one test. Locked
// mode repurposes that bit and uses OccupancyLocked instead.
func (b *Block8) Full() bool { return b.MetaHi>>63 != 0 }

// Lane returns fingerprint lane i; serialization/debug accessor.
func (b *Block8) Lane(i int) byte { return swar.Lane8(&b.Fps, i) }

// bucketRange returns the slot range [start, end) holding bucket's
// fingerprints (paper §3.3); it shares the explicit-word implementation with
// the locked and optimistic paths.
func (b *Block8) bucketRange(bucket uint) (start, end uint) {
	return bucketRange128(b.MetaLo, b.MetaHi, bucket)
}

// BucketCount returns the number of fingerprints currently stored in bucket.
func (b *Block8) BucketCount(bucket uint) uint {
	start, end := b.bucketRange(bucket)
	return end - start
}

// Probe returns the slot match mask of the pre-broadcast fingerprint within
// bucket (the fused select + compare kernel). Callers probing two blocks for
// the same fingerprint broadcast once and reuse bcast.
func (b *Block8) Probe(bucket uint, bcast uint64) uint64 {
	return probe8(b.MetaLo, b.MetaHi, &b.Fps, bucket, bcast)
}

// Contains reports whether fp is present in bucket.
func (b *Block8) Contains(bucket uint, fp byte) bool {
	return b.Probe(bucket, swar.BroadcastByte(fp)) != 0
}

// find returns the slot index of one instance of fp in bucket, or -1.
func (b *Block8) find(bucket uint, fp byte) int {
	mask := b.Probe(bucket, swar.BroadcastByte(fp))
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// Insert adds fp to bucket, shifting subsequent fingerprints and metadata
// bits up by one position. It returns false if the block is full. Duplicates
// are permitted (the filter is a multiset).
func (b *Block8) Insert(bucket uint, fp byte) bool {
	if b.Full() {
		return false
	}
	b.MetaLo, b.MetaHi, _ = insertSlot8(b.MetaLo, b.MetaHi, &b.Fps, bucket, fp)
	return true
}

// Remove deletes one instance of fp from bucket, reversing Insert. It
// returns false if fp is not present in bucket.
func (b *Block8) Remove(bucket uint, fp byte) bool {
	return b.RemoveB(bucket, swar.BroadcastByte(fp))
}

// RemoveB is Remove with a pre-broadcast fingerprint, for callers that probe
// multiple blocks for the same fingerprint.
func (b *Block8) RemoveB(bucket uint, bcast uint64) bool {
	lo, hi, z := removeSlot8(b.MetaLo, b.MetaHi, b.MetaHi, &b.Fps, bucket, bcast)
	if z < 0 {
		return false
	}
	b.MetaLo, b.MetaHi = lo, hi
	return true
}
