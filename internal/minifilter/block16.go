package minifilter

import (
	"math/bits"

	"vqf/internal/swar"
)

// Geometry of the 16-bit-fingerprint block (paper §6.1): 28 slots, 36
// buckets, 64 metadata bits, 56 fingerprint bytes — one 64-byte cache line.
const (
	B16Slots   = 28
	B16Buckets = 36
	B16Meta    = B16Slots + B16Buckets // 64

	b16Init = uint64(1)<<B16Buckets - 1
)

// Block16 is a mini-filter with 16-bit fingerprints. Its 64 metadata bits
// hold 36 bucket terminators interleaved with one zero per fingerprint.
// Fingerprint lanes are stored word-native: uint16 lane i lives at bits
// 16·(i mod 4) of Fps[i/4]; see Block8. The zero-value Block16 is NOT valid;
// call Reset first.
type Block16 struct {
	Meta uint64
	Fps  [swar.Words16]uint64
}

// Reset returns the block to the empty state.
func (b *Block16) Reset() {
	b.Meta = b16Init
	b.Fps = [swar.Words16]uint64{}
}

// Occupancy returns the number of fingerprints stored in the block: the
// final terminator is the highest set metadata bit (see Block8.Occupancy).
func (b *Block16) Occupancy() uint {
	return uint(bits.Len64(b.Meta)) - B16Buckets
}

// Full reports whether all 28 slots are occupied; in plain mode the final
// terminator reaches metadata bit 63 exactly when the block is full (see
// Block8.Full).
func (b *Block16) Full() bool { return b.Meta>>63 != 0 }

// Lane returns fingerprint lane i; serialization/debug accessor.
func (b *Block16) Lane(i int) uint16 { return swar.Lane16(&b.Fps, i) }

func (b *Block16) bucketRange(bucket uint) (start, end uint) {
	return bucketRange64(b.Meta, bucket)
}

// BucketCount returns the number of fingerprints currently stored in bucket.
func (b *Block16) BucketCount(bucket uint) uint {
	start, end := b.bucketRange(bucket)
	return end - start
}

// Probe returns the slot match mask of the pre-broadcast fingerprint within
// bucket; see Block8.Probe.
func (b *Block16) Probe(bucket uint, bcast uint64) uint64 {
	return probe16(b.Meta, &b.Fps, bucket, bcast)
}

// Contains reports whether fp is present in bucket.
func (b *Block16) Contains(bucket uint, fp uint16) bool {
	return b.Probe(bucket, swar.BroadcastU16(fp)) != 0
}

func (b *Block16) find(bucket uint, fp uint16) int {
	mask := b.Probe(bucket, swar.BroadcastU16(fp))
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// Insert adds fp to bucket. It returns false if the block is full.
func (b *Block16) Insert(bucket uint, fp uint16) bool {
	if b.Full() {
		return false
	}
	b.Meta, _ = insertSlot16(b.Meta, &b.Fps, bucket, fp)
	return true
}

// Remove deletes one instance of fp from bucket, returning false if absent.
func (b *Block16) Remove(bucket uint, fp uint16) bool {
	return b.RemoveB(bucket, swar.BroadcastU16(fp))
}

// RemoveB is Remove with a pre-broadcast fingerprint.
func (b *Block16) RemoveB(bucket uint, bcast uint64) bool {
	meta, z := removeSlot16(b.Meta, b.Meta, &b.Fps, bucket, bcast)
	if z < 0 {
		return false
	}
	b.Meta = meta
	return true
}
