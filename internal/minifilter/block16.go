package minifilter

import (
	"math/bits"

	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Geometry of the 16-bit-fingerprint block (paper §6.1): 28 slots, 36
// buckets, 64 metadata bits, 56 fingerprint bytes — one 64-byte cache line.
const (
	B16Slots   = 28
	B16Buckets = 36
	B16Meta    = B16Slots + B16Buckets // 64

	b16Init = uint64(1)<<B16Buckets - 1
)

// Block16 is a mini-filter with 16-bit fingerprints. Its 64 metadata bits
// hold 36 bucket terminators interleaved with one zero per fingerprint.
// The zero-value Block16 is NOT valid; call Reset first.
type Block16 struct {
	Meta uint64
	Fps  [B16Slots]uint16
}

// Reset returns the block to the empty state.
func (b *Block16) Reset() {
	b.Meta = b16Init
	b.Fps = [B16Slots]uint16{}
}

// Occupancy returns the number of fingerprints stored in the block: the
// final terminator is the highest set metadata bit (see Block8.Occupancy).
func (b *Block16) Occupancy() uint {
	return uint(bits.Len64(b.Meta)) - B16Buckets
}

// Full reports whether all 28 slots are occupied.
func (b *Block16) Full() bool { return b.Occupancy() == B16Slots }

func (b *Block16) bucketRange(bucket uint) (start, end uint) {
	if bucket == 0 {
		return 0, uint(bits.TrailingZeros64(b.Meta))
	}
	p := bitvec.Select64(b.Meta, bucket-1)
	rest := b.Meta >> (p + 1) << (p + 1)
	q := uint(bits.TrailingZeros64(rest))
	return p - bucket + 1, q - bucket
}

// BucketCount returns the number of fingerprints currently stored in bucket.
func (b *Block16) BucketCount(bucket uint) uint {
	start, end := b.bucketRange(bucket)
	return end - start
}

// Contains reports whether fp is present in bucket.
func (b *Block16) Contains(bucket uint, fp uint16) bool {
	start, end := b.bucketRange(bucket)
	if start == end {
		return false
	}
	return swar.MatchMaskU16Range(b.Fps[:], fp, start, end) != 0
}

func (b *Block16) find(bucket uint, fp uint16) int {
	start, end := b.bucketRange(bucket)
	if start == end {
		return -1
	}
	mask := swar.MatchMaskU16Range(b.Fps[:], fp, start, end)
	if mask == 0 {
		return -1
	}
	return bits.TrailingZeros64(mask)
}

// Insert adds fp to bucket. It returns false if the block is full.
func (b *Block16) Insert(bucket uint, fp uint16) bool {
	occ := b.Occupancy()
	if occ == B16Slots {
		return false
	}
	m := bitvec.Select64(b.Meta, bucket)
	z := int(m - bucket)
	swar.ShiftU16Up(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	b.Meta = bitvec.InsertZero64(b.Meta, m)
	return true
}

// Remove deletes one instance of fp from bucket, returning false if absent.
func (b *Block16) Remove(bucket uint, fp uint16) bool {
	l := b.find(bucket, fp)
	if l < 0 {
		return false
	}
	occ := b.Occupancy()
	m := uint(l) + bucket
	b.Meta = bitvec.RemoveBit64(b.Meta, m)
	swar.ShiftU16Down(b.Fps[:], l, int(occ))
	return true
}
