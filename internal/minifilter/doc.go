// Package minifilter implements the vector quotient filter's blocks
// (Section 3.2 of the paper): each block is itself a small quotient filter —
// a "mini-filter" — consisting of b logical buckets, s fingerprint slots, and
// b+s metadata bits that record, in unary, how many fingerprints each bucket
// holds. Fingerprints are stored in bucket order, so the k-th bucket's run is
// located with a select on the metadata word.
//
// Two concrete geometries are provided, both exactly one 64-byte cache line,
// mirroring the paper's Section 6.1 parameter choices:
//
//   - Block8:  8-bit fingerprints, s = 48 slots, b = 80 buckets, 128 metadata
//     bits. Per-block false-positive rate (s/b)·2⁻⁸, filter target ε ≈ 2⁻⁸.
//   - Block16: 16-bit fingerprints, s = 28 slots, b = 36 buckets, 64 metadata
//     bits. Filter target ε ≈ 2⁻¹⁶.
//
// All operations run in a constant number of word operations: select on the
// metadata (the PDEP trick of Section 3.3, here broadword select), SWAR
// compare over the fingerprint lanes (the VPCMPB analog), and a single
// in-block shift (the VPERMB analog). Loop-based "generic" variants of every
// operation are provided as the ablation baseline for the paper's Section 7.7
// AVX-512-vs-AVX2 comparison.
//
// The top metadata bit of each block (bit b+s−1) doubles as a spin-lock bit
// for the thread-safe filter (Section 6.3): it is only ever 1 in unlocked
// state when the block is completely full, in which case it coincides with
// the final bucket terminator. Lock-aware operation variants preserve it.
package minifilter
