package minifilter

import (
	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Slot-reporting operation variants. The value-associating filter (paper §8:
// "the vector quotient filter also has the ability to associate a small
// value with each item") keeps a parallel per-slot value array; it needs to
// know which slot an operation touched so the values can shift in lockstep
// with the fingerprints.

// InsertAt inserts fp into bucket and returns the slot index it now occupies,
// or -1 if the block is full. Slots at and above the returned index have
// shifted up by one.
func (b *Block8) InsertAt(bucket uint, fp byte) int {
	occ := b.Occupancy()
	if occ == B8Slots {
		return -1
	}
	m := bitvec.Select128(b.MetaLo, b.MetaHi, bucket)
	z := int(m - bucket)
	swar.ShiftBytesUp(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	b.MetaLo, b.MetaHi = bitvec.InsertZero128(b.MetaLo, b.MetaHi, m)
	return z
}

// RemoveAt removes one instance of fp from bucket and returns the slot index
// it occupied, or -1 if absent. Slots above the returned index have shifted
// down by one.
func (b *Block8) RemoveAt(bucket uint, fp byte) int {
	l := b.find(bucket, fp)
	if l < 0 {
		return -1
	}
	occ := b.Occupancy()
	m := uint(l) + bucket
	b.MetaLo, b.MetaHi = bitvec.RemoveBit128(b.MetaLo, b.MetaHi, m)
	swar.ShiftBytesDown(b.Fps[:], l, int(occ))
	return l
}

// FindSlot returns the slot index of one instance of fp in bucket, or -1.
func (b *Block8) FindSlot(bucket uint, fp byte) int { return b.find(bucket, fp) }

// FindSlots returns a bitmask of every slot in bucket holding fp (for
// callers that must disambiguate duplicates).
func (b *Block8) FindSlots(bucket uint, fp byte) uint64 {
	start, end := b.bucketRange(bucket)
	if start == end {
		return 0
	}
	return swar.MatchMaskBytesRange(b.Fps[:], fp, start, end)
}

// InsertAt inserts fp into bucket and returns the slot it occupies, or -1.
func (b *Block16) InsertAt(bucket uint, fp uint16) int {
	occ := b.Occupancy()
	if occ == B16Slots {
		return -1
	}
	m := bitvec.Select64(b.Meta, bucket)
	z := int(m - bucket)
	swar.ShiftU16Up(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	b.Meta = bitvec.InsertZero64(b.Meta, m)
	return z
}

// RemoveAt removes one instance of fp from bucket, returning its former slot
// or -1.
func (b *Block16) RemoveAt(bucket uint, fp uint16) int {
	l := b.find(bucket, fp)
	if l < 0 {
		return -1
	}
	occ := b.Occupancy()
	m := uint(l) + bucket
	b.Meta = bitvec.RemoveBit64(b.Meta, m)
	swar.ShiftU16Down(b.Fps[:], l, int(occ))
	return l
}

// FindSlot returns the slot index of one instance of fp in bucket, or -1.
func (b *Block16) FindSlot(bucket uint, fp uint16) int { return b.find(bucket, fp) }
