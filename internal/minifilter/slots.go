package minifilter

import "vqf/internal/swar"

// Slot-reporting operation variants. The value-associating filter (paper §8:
// "the vector quotient filter also has the ability to associate a small
// value with each item") keeps a parallel per-slot value array; it needs to
// know which slot an operation touched so the values can shift in lockstep
// with the fingerprints.

// InsertAt inserts fp into bucket and returns the slot index it now occupies,
// or -1 if the block is full. Slots at and above the returned index have
// shifted up by one.
func (b *Block8) InsertAt(bucket uint, fp byte) int {
	if b.Full() {
		return -1
	}
	var z int
	b.MetaLo, b.MetaHi, z = insertSlot8(b.MetaLo, b.MetaHi, &b.Fps, bucket, fp)
	return z
}

// RemoveAt removes one instance of fp from bucket and returns the slot index
// it occupied, or -1 if absent. Slots above the returned index have shifted
// down by one.
func (b *Block8) RemoveAt(bucket uint, fp byte) int {
	lo, hi, z := removeSlot8(b.MetaLo, b.MetaHi, b.MetaHi, &b.Fps, bucket, swar.BroadcastByte(fp))
	if z >= 0 {
		b.MetaLo, b.MetaHi = lo, hi
	}
	return z
}

// FindSlot returns the slot index of one instance of fp in bucket, or -1.
func (b *Block8) FindSlot(bucket uint, fp byte) int { return b.find(bucket, fp) }

// FindSlots returns a bitmask of every slot in bucket holding fp (for
// callers that must disambiguate duplicates).
func (b *Block8) FindSlots(bucket uint, fp byte) uint64 {
	return b.Probe(bucket, swar.BroadcastByte(fp))
}

// InsertAt inserts fp into bucket and returns the slot it occupies, or -1.
func (b *Block16) InsertAt(bucket uint, fp uint16) int {
	if b.Full() {
		return -1
	}
	var z int
	b.Meta, z = insertSlot16(b.Meta, &b.Fps, bucket, fp)
	return z
}

// RemoveAt removes one instance of fp from bucket, returning its former slot
// or -1.
func (b *Block16) RemoveAt(bucket uint, fp uint16) int {
	meta, z := removeSlot16(b.Meta, b.Meta, &b.Fps, bucket, swar.BroadcastU16(fp))
	if z >= 0 {
		b.Meta = meta
	}
	return z
}

// FindSlot returns the slot index of one instance of fp in bucket, or -1.
func (b *Block16) FindSlot(bucket uint, fp uint16) int { return b.find(bucket, fp) }
