package minifilter

import (
	"math/bits"

	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Fused hot-path kernels. Each kernel takes a block's *logical* metadata
// words explicitly — the plain paths pass the stored words, the locked paths
// pass the lock-bit-adjusted form, and the optimistic paths pass a validated
// snapshot — so one zero-allocation implementation serves Contains, Insert,
// and Remove across all execution modes. A kernel computes the metadata
// select, the bucket's slot-range offsets, and the SWAR match or funnel shift
// in a single pass; the fingerprint target arrives pre-broadcast so a
// two-block probe pays for one broadcast.

// probe8Generic returns the match mask of the pre-broadcast fingerprint
// within bucket: bit i is set iff slot i belongs to bucket and holds the
// fingerprint. An empty bucket yields an empty range mask, so no branch is
// needed for that case.
//
// This is the portable body behind probe8, which is build-tagged: on amd64
// (without purego) kernel_amd64.go dispatches to a fused assembly kernel that
// folds the metadata select and the lane match into one routine, falling back
// here when the CPU lacks PDEP/TZCNT or the assembly kernels are switched
// off; everywhere else kernel_generic.go aliases probe8 to this directly.
// The generic body is always compiled so the differential parity tests can
// compare both implementations in one binary.
func probe8Generic(lo, hi uint64, fps *[swar.Words8]uint64, bucket uint, bcast uint64) uint64 {
	start, end := bucketRange128(lo, hi, bucket)
	return swar.Match48Range(fps, bcast, start, end)
}

// probe16Generic is the 16-bit-fingerprint analog of probe8Generic.
func probe16Generic(meta uint64, fps *[swar.Words16]uint64, bucket uint, bcast uint64) uint64 {
	start, end := bucketRange64(meta, bucket)
	return swar.Match28Range(fps, bcast, start, end)
}

// insertSlot8 makes room for fp at the head of bucket and stores it, mutating
// fps in place, and returns the updated metadata words plus the slot index
// used. The funnel shift moves the whole lane tail, so occupancy is not
// needed here — the caller must have verified the block is not full (lanes at
// and above occupancy are zero, so nothing real falls off the top).
func insertSlot8(lo, hi uint64, fps *[swar.Words8]uint64, bucket uint, fp byte) (newLo, newHi uint64, z int) {
	m := bitvec.Select128(lo, hi, bucket)
	z = int(m - bucket)
	swar.InsertLane8(fps, z, fp)
	newLo, newHi = bitvec.InsertZero128(lo, hi, m)
	return
}

// insertSlot16 is the 16-bit-fingerprint analog of insertSlot8.
func insertSlot16(meta uint64, fps *[swar.Words16]uint64, bucket uint, fp uint16) (newMeta uint64, z int) {
	m := bitvec.Select64(meta, bucket)
	z = int(m - bucket)
	swar.InsertLane16(fps, z, fp)
	return bitvec.InsertZero64(meta, m), z
}

// removeSlot8 deletes one instance of the pre-broadcast fingerprint from
// bucket, mutating fps in place, and returns the updated metadata words plus
// the slot index freed — or z = −1 with fps untouched when the fingerprint is
// absent. hiSel is the select form of the high word (top bit forced in locked
// mode); hiLog is the arithmetic form fed to the metadata shift (top bit set
// only when it is a real terminator, i.e. the block is full). Plain callers
// pass the stored word for both. The down shift feeds zero at the top, so
// the freed lane needs no explicit clear and occupancy is not consulted.
func removeSlot8(lo, hiSel, hiLog uint64, fps *[swar.Words8]uint64, bucket uint, bcast uint64) (newLo, newHi uint64, z int) {
	start, end := bucketRange128(lo, hiSel, bucket)
	mask := swar.Match48Range(fps, bcast, start, end)
	if mask == 0 {
		return lo, hiLog, -1
	}
	z = bits.TrailingZeros64(mask)
	swar.RemoveLane8(fps, z)
	newLo, newHi = bitvec.RemoveBit128(lo, hiLog, uint(z)+bucket)
	return
}

// removeSlot16 is the 16-bit-fingerprint analog of removeSlot8.
func removeSlot16(metaSel, metaLog uint64, fps *[swar.Words16]uint64, bucket uint, bcast uint64) (newMeta uint64, z int) {
	start, end := bucketRange64(metaSel, bucket)
	mask := swar.Match28Range(fps, bcast, start, end)
	if mask == 0 {
		return metaLog, -1
	}
	z = bits.TrailingZeros64(mask)
	swar.RemoveLane16(fps, z)
	return bitvec.RemoveBit64(metaLog, uint(z)+bucket), z
}
