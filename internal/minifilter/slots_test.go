package minifilter

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestBlock8InsertAtReturnsRunEnd(t *testing.T) {
	var b Block8
	b.Reset()
	// Buckets fill in order; InsertAt must return the slot at the end of the
	// target bucket's run, which equals the number of fingerprints in
	// buckets <= bucket before the insert.
	if z := b.InsertAt(10, 1); z != 0 {
		t.Fatalf("first insert slot = %d", z)
	}
	if z := b.InsertAt(10, 2); z != 1 {
		t.Fatalf("second insert into same bucket slot = %d", z)
	}
	if z := b.InsertAt(5, 3); z != 0 {
		t.Fatalf("insert into earlier bucket slot = %d", z)
	}
	if z := b.InsertAt(20, 4); z != 3 {
		t.Fatalf("insert into later bucket slot = %d", z)
	}
	// Layout now: [3(b5), 1(b10), 2(b10), 4(b20)].
	want := [4]byte{3, 1, 2, 4}
	for i, w := range want {
		if b.Lane(i) != w {
			t.Fatalf("lane %d = %d, want %v", i, b.Lane(i), want)
		}
	}
}

func TestBlock8RemoveAtInverse(t *testing.T) {
	var b Block8
	b.Reset()
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		bucket uint
		fp     byte
	}
	var entries []entry
	for i := 0; i < 40; i++ {
		e := entry{uint(rng.Intn(B8Buckets)), byte(rng.Intn(256))}
		if b.InsertAt(e.bucket, e.fp) < 0 {
			t.Fatal("insert failed")
		}
		entries = append(entries, e)
	}
	for len(entries) > 0 {
		i := rng.Intn(len(entries))
		e := entries[i]
		entries[i] = entries[len(entries)-1]
		entries = entries[:len(entries)-1]
		z := b.RemoveAt(e.bucket, e.fp)
		if z < 0 {
			t.Fatalf("RemoveAt(%d,%d) failed", e.bucket, e.fp)
		}
	}
	if b.Occupancy() != 0 {
		t.Fatalf("occupancy %d after removing all", b.Occupancy())
	}
}

func TestBlock8FindSlotsDuplicates(t *testing.T) {
	var b Block8
	b.Reset()
	b.InsertAt(7, 0x11)
	b.InsertAt(7, 0x11)
	b.InsertAt(7, 0x22)
	b.InsertAt(7, 0x11)
	mask := b.FindSlots(7, 0x11)
	if bits.OnesCount64(mask) != 3 {
		t.Fatalf("FindSlots found %d instances, want 3 (mask %#x)", bits.OnesCount64(mask), mask)
	}
	if b.FindSlots(7, 0x33) != 0 {
		t.Error("FindSlots matched absent fingerprint")
	}
	if b.FindSlots(8, 0x11) != 0 {
		t.Error("FindSlots leaked across buckets")
	}
}

func TestBlock8FindSlotAgreesWithContains(t *testing.T) {
	var b Block8
	b.Reset()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		b.InsertAt(uint(rng.Intn(B8Buckets)), byte(rng.Intn(8)))
	}
	for bucket := uint(0); bucket < B8Buckets; bucket++ {
		for fp := byte(0); fp < 8; fp++ {
			if (b.FindSlot(bucket, fp) >= 0) != b.Contains(bucket, fp) {
				t.Fatalf("FindSlot and Contains disagree at (%d,%d)", bucket, fp)
			}
		}
	}
}

func TestBlock16InsertAtRemoveAt(t *testing.T) {
	var b Block16
	b.Reset()
	if z := b.InsertAt(3, 0xbeef); z != 0 {
		t.Fatalf("slot = %d", z)
	}
	if z := b.InsertAt(3, 0xcafe); z != 1 {
		t.Fatalf("slot = %d", z)
	}
	if z := b.InsertAt(1, 0x1111); z != 0 {
		t.Fatalf("earlier-bucket slot = %d", z)
	}
	if z := b.FindSlot(3, 0xbeef); z != 1 {
		t.Fatalf("FindSlot = %d after shift", z)
	}
	if z := b.RemoveAt(3, 0xbeef); z != 1 {
		t.Fatalf("RemoveAt = %d", z)
	}
	if b.Occupancy() != 2 {
		t.Fatalf("occupancy = %d", b.Occupancy())
	}
}

func TestInsertAtMatchesInsert(t *testing.T) {
	var a, b Block8
	a.Reset()
	b.Reset()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < B8Slots; i++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(256))
		okA := a.Insert(bucket, fp)
		zB := b.InsertAt(bucket, fp)
		if okA != (zB >= 0) {
			t.Fatal("Insert and InsertAt disagree on success")
		}
		if a.MetaLo != b.MetaLo || a.MetaHi != b.MetaHi || a.Fps != b.Fps {
			t.Fatal("Insert and InsertAt produced different states")
		}
	}
}
