package minifilter

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Thread-safe block operations (paper §6.3). The top metadata bit — bit 63 of
// Block8.MetaHi, bit 63 of Block16.Meta — is a spin-lock bit. In this mode
// the stored top bit is *only* the lock flag; every metadata read forces it
// to 1, which is harmless when the block is not full (the forced bit lies
// above all bucket terminators) and exactly reconstructs the final bucket
// terminator when it is ("treat it as though it were 1 in the bucket-size
// bitvector"). Locks are acquired with compare-and-swap, the analog of the
// paper's __sync_fetch_and_or.
//
// While a lock is held, MetaLo and Fps may be accessed with plain loads and
// stores (only lock holders touch them); the word containing the lock bit is
// always accessed atomically because other threads CAS on it concurrently.

const lockBit = uint64(1) << 63

// TryLock attempts to acquire the block's lock bit; it reports success.
func (b *Block8) TryLock() bool {
	old := atomic.LoadUint64(&b.MetaHi)
	if old&lockBit != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(&b.MetaHi, old, old|lockBit)
}

// Lock spins until the block's lock bit is acquired.
func (b *Block8) Lock() {
	for i := 0; ; i++ {
		if b.TryLock() {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the block's lock bit.
func (b *Block8) Unlock() {
	atomic.StoreUint64(&b.MetaHi, atomic.LoadUint64(&b.MetaHi)&^lockBit)
}

// metaLocked returns the logical metadata words while the lock is held (or
// for a read that tolerates tearing, such as the shortcut occupancy probe):
// the stored words with the top bit forced to 1.
func (b *Block8) metaLocked() (uint64, uint64) {
	return b.MetaLo, atomic.LoadUint64(&b.MetaHi) | lockBit
}

// OccupancyLocked returns the block occupancy under the locked-mode metadata
// convention: with the lock bit stripped, a full block shows only 79
// terminators (its final terminator is represented by the forced top bit);
// otherwise all 80 are stored and the highest one gives the occupancy.
func (b *Block8) OccupancyLocked() uint {
	lo, hi := b.metaLocked()
	hiReal := hi &^ lockBit
	if bits.OnesCount64(lo)+bits.OnesCount64(hiReal) == B8Buckets-1 {
		return B8Slots
	}
	if hiReal != 0 {
		return 64 + uint(bits.Len64(hiReal)) - B8Buckets
	}
	return uint(bits.Len64(lo)) - B8Buckets
}

func (b *Block8) bucketRangeLocked(bucket uint) (start, end uint) {
	lo, hi := b.metaLocked()
	return bucketRange128(lo, hi, bucket)
}

// bucketRange128 computes a bucket's slot range on explicit metadata words
// (shared by the locked paths, which read the words once atomically).
func bucketRange128(lo, hi uint64, bucket uint) (start, end uint) {
	if bucket == 0 {
		if t := uint(bits.TrailingZeros64(lo)); t < 64 {
			return 0, t
		}
		return 0, 64 + uint(bits.TrailingZeros64(hi))
	}
	p := bitvec.Select128(lo, hi, bucket-1)
	var q uint
	if p < 64 {
		if rest := lo >> (p + 1) << (p + 1); rest != 0 {
			q = uint(bits.TrailingZeros64(rest))
		} else {
			q = 64 + uint(bits.TrailingZeros64(hi))
		}
	} else {
		rest := hi >> (p - 63) << (p - 63)
		q = 64 + uint(bits.TrailingZeros64(rest))
	}
	return p - bucket + 1, q - bucket
}

// ContainsLocked reports whether fp is present in bucket. The caller must
// hold the block lock.
func (b *Block8) ContainsLocked(bucket uint, fp byte) bool {
	start, end := b.bucketRangeLocked(bucket)
	if start == end {
		return false
	}
	return swar.MatchMaskBytesRange(b.Fps[:], fp, start, end) != 0
}

// InsertLocked adds fp to bucket. The caller must hold the block lock; the
// lock bit is preserved. It returns false if the block is full.
func (b *Block8) InsertLocked(bucket uint, fp byte) bool {
	lo, hi := b.metaLocked()
	occ := b.OccupancyLocked()
	if occ == B8Slots {
		return false
	}
	m := bitvec.Select128(lo, hi, bucket)
	z := int(m - bucket)
	swar.ShiftBytesUp(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	// The forced top bit (spurious when not full) is discarded by the shift;
	// re-set it afterwards: it is the still-held lock, and coincides with the
	// final terminator if the insert filled the block.
	newLo, newHi := bitvec.InsertZero128(lo, hi, m)
	b.MetaLo = newLo
	atomic.StoreUint64(&b.MetaHi, newHi|lockBit)
	return true
}

// RemoveLocked deletes one instance of fp from bucket. The caller must hold
// the block lock; the lock bit is preserved. It returns false if fp is not
// present in bucket.
func (b *Block8) RemoveLocked(bucket uint, fp byte) bool {
	lo, hi := b.metaLocked()
	start, end := bucketRange128(lo, hi, bucket)
	if start == end {
		return false
	}
	mask := swar.MatchMaskBytesRange(b.Fps[:], fp, start, end)
	if mask == 0 {
		return false
	}
	l := trailingZeros(mask)
	occ := b.OccupancyLocked()
	// The logical top bit is 1 only when the block is full; otherwise the
	// forced lock bit must not shift down into the metadata body.
	hiLogical := hi &^ lockBit
	if occ == B8Slots {
		hiLogical |= lockBit
	}
	m := uint(l) + bucket
	newLo, newHi := bitvec.RemoveBit128(lo, hiLogical, m)
	swar.ShiftBytesDown(b.Fps[:], int(l), int(occ))
	b.MetaLo = newLo
	atomic.StoreUint64(&b.MetaHi, newHi|lockBit)
	return true
}

func trailingZeros(x uint64) uint { return uint(bits.TrailingZeros64(x)) }

// TryLock attempts to acquire the block's lock bit; it reports success.
func (b *Block16) TryLock() bool {
	old := atomic.LoadUint64(&b.Meta)
	if old&lockBit != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(&b.Meta, old, old|lockBit)
}

// Lock spins until the block's lock bit is acquired.
func (b *Block16) Lock() {
	for i := 0; ; i++ {
		if b.TryLock() {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the block's lock bit.
func (b *Block16) Unlock() {
	atomic.StoreUint64(&b.Meta, atomic.LoadUint64(&b.Meta)&^lockBit)
}

func (b *Block16) metaLocked() uint64 {
	return atomic.LoadUint64(&b.Meta) | lockBit
}

// OccupancyLocked returns the block occupancy under the locked-mode metadata
// convention; see Block8.OccupancyLocked.
func (b *Block16) OccupancyLocked() uint {
	real := atomic.LoadUint64(&b.Meta) &^ lockBit
	if bits.OnesCount64(real) == B16Buckets-1 {
		return B16Slots
	}
	return uint(bits.Len64(real)) - B16Buckets
}

func bucketRange64(meta uint64, bucket uint) (start, end uint) {
	if bucket == 0 {
		return 0, uint(bits.TrailingZeros64(meta))
	}
	p := bitvec.Select64(meta, bucket-1)
	rest := meta >> (p + 1) << (p + 1)
	q := uint(bits.TrailingZeros64(rest))
	return p - bucket + 1, q - bucket
}

// ContainsLocked reports whether fp is present in bucket. The caller must
// hold the block lock.
func (b *Block16) ContainsLocked(bucket uint, fp uint16) bool {
	start, end := bucketRange64(b.metaLocked(), bucket)
	if start == end {
		return false
	}
	return swar.MatchMaskU16Range(b.Fps[:], fp, start, end) != 0
}

// InsertLocked adds fp to bucket. The caller must hold the block lock.
func (b *Block16) InsertLocked(bucket uint, fp uint16) bool {
	meta := b.metaLocked()
	occ := b.OccupancyLocked()
	if occ == B16Slots {
		return false
	}
	m := bitvec.Select64(meta, bucket)
	z := int(m - bucket)
	swar.ShiftU16Up(b.Fps[:], z, int(occ))
	b.Fps[z] = fp
	atomic.StoreUint64(&b.Meta, bitvec.InsertZero64(meta, m)|lockBit)
	return true
}

// RemoveLocked deletes one instance of fp from bucket. The caller must hold
// the block lock.
func (b *Block16) RemoveLocked(bucket uint, fp uint16) bool {
	meta := b.metaLocked()
	start, end := bucketRange64(meta, bucket)
	if start == end {
		return false
	}
	mask := swar.MatchMaskU16Range(b.Fps[:], fp, start, end)
	if mask == 0 {
		return false
	}
	l := trailingZeros(mask)
	occ := b.OccupancyLocked()
	metaLogical := meta &^ lockBit
	if occ == B16Slots {
		metaLogical |= lockBit
	}
	m := uint(l) + bucket
	newMeta := bitvec.RemoveBit64(metaLogical, m)
	swar.ShiftU16Down(b.Fps[:], int(l), int(occ))
	atomic.StoreUint64(&b.Meta, newMeta|lockBit)
	return true
}
