package minifilter

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"

	"vqf/internal/bitvec"
	"vqf/internal/swar"
)

// Thread-safe block operations (paper §6.3). The top metadata bit — bit 63 of
// Block8.MetaHi, bit 63 of Block16.Meta — is a spin-lock bit. In this mode
// the stored top bit is *only* the lock flag; every metadata read forces it
// to 1, which is harmless when the block is not full (the forced bit lies
// above all bucket terminators) and exactly reconstructs the final bucket
// terminator when it is ("treat it as though it were 1 in the bucket-size
// bitvector"). Locks are acquired with compare-and-swap, the analog of the
// paper's __sync_fetch_and_or.
//
// Mutations are written back with atomic word stores so that lock-free
// optimistic readers (see optimistic.go) can snapshot a block with atomic
// word loads: under the Go memory model a plain store racing an atomic load
// is a data race even when a seqlock discards the torn value, so every word
// a reader may touch is published atomically. The word-native fingerprint
// layout makes this direct: Fps already is the array of uint64 words readers
// snapshot, no reinterpreting cast needed. Lock holders may still *read*
// their own block with plain loads (loads never race with loads, and no
// other thread stores while the lock is held).

const lockBit = uint64(1) << 63

// LockBit exposes the locked-mode lock flag (the top metadata bit) to
// internal/core, whose serializer converts between the locked and plain
// metadata conventions.
const LockBit = lockBit

// The locked-mode protocol depends on blocks being exactly one 64-byte cache
// line with word-aligned fingerprint storage; both are asserted at compile
// time.
var (
	_ [0]struct{} = [unsafe.Offsetof(Block8{}.Fps) % 8]struct{}{}
	_ [0]struct{} = [unsafe.Offsetof(Block16{}.Fps) % 8]struct{}{}
	_ [0]struct{} = [64 - unsafe.Sizeof(Block8{})]struct{}{}
	_ [0]struct{} = [64 - unsafe.Sizeof(Block16{})]struct{}{}
)

// TryLock attempts to acquire the block's lock bit; it reports success.
func (b *Block8) TryLock() bool {
	old := atomic.LoadUint64(&b.MetaHi)
	if old&lockBit != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(&b.MetaHi, old, old|lockBit)
}

// Lock spins until the block's lock bit is acquired.
func (b *Block8) Lock() {
	for i := 0; ; i++ {
		if b.TryLock() {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the block's lock bit.
func (b *Block8) Unlock() {
	atomic.StoreUint64(&b.MetaHi, atomic.LoadUint64(&b.MetaHi)&^lockBit)
}

// UnlockBump publishes a mutation and releases the lock: it bumps the
// seqlock version stripe associated with this block, then clears the lock
// bit. An optimistic reader overlapping the write observes either the held
// lock bit or the changed version — never a silently torn snapshot. Callers
// that did not mutate the block release with plain Unlock.
func (b *Block8) UnlockBump(seq *atomic.Uint64) {
	seq.Add(1)
	b.Unlock()
}

// metaLocked returns the logical metadata words while the lock is held (or
// for a read that tolerates tearing, such as the shortcut occupancy probe):
// the stored words with the top bit forced to 1.
func (b *Block8) metaLocked() (uint64, uint64) {
	return b.MetaLo, atomic.LoadUint64(&b.MetaHi) | lockBit
}

// occupancy128 computes the locked-mode occupancy from explicit metadata
// words: with the lock bit stripped, a full block shows only 79 terminators
// (its final terminator is represented by the forced top bit); otherwise all
// 80 are stored and the highest one gives the occupancy.
func occupancy128(lo, hi uint64) uint {
	hiReal := hi &^ lockBit
	if bits.OnesCount64(lo)+bits.OnesCount64(hiReal) == B8Buckets-1 {
		return B8Slots
	}
	if hiReal != 0 {
		return 64 + uint(bits.Len64(hiReal)) - B8Buckets
	}
	return uint(bits.Len64(lo)) - B8Buckets
}

// OccupancyLocked returns the block occupancy under the locked-mode metadata
// convention; see occupancy128.
func (b *Block8) OccupancyLocked() uint {
	lo, hi := b.metaLocked()
	return occupancy128(lo, hi)
}

// bucketRange128 computes a bucket's slot range on explicit metadata words
// (shared by the plain, locked, and optimistic paths, which read the words
// once).
func bucketRange128(lo, hi uint64, bucket uint) (start, end uint) {
	if bucket == 0 {
		if t := uint(bits.TrailingZeros64(lo)); t < 64 {
			return 0, t
		}
		return 0, 64 + uint(bits.TrailingZeros64(hi))
	}
	p := bitvec.Select128(lo, hi, bucket-1)
	var q uint
	if p < 64 {
		if rest := lo >> (p + 1) << (p + 1); rest != 0 {
			q = uint(bits.TrailingZeros64(rest))
		} else {
			q = 64 + uint(bits.TrailingZeros64(hi))
		}
	} else {
		rest := hi >> (p - 63) << (p - 63)
		q = 64 + uint(bits.TrailingZeros64(rest))
	}
	return p - bucket + 1, q - bucket
}

// ContainsLocked reports whether fp is present in bucket. The caller must
// hold the block lock.
func (b *Block8) ContainsLocked(bucket uint, fp byte) bool {
	return b.ContainsLockedB(bucket, swar.BroadcastByte(fp))
}

// ContainsLockedB is ContainsLocked with a pre-broadcast fingerprint.
func (b *Block8) ContainsLockedB(bucket uint, bcast uint64) bool {
	lo, hi := b.metaLocked()
	return probe8(lo, hi, &b.Fps, bucket, bcast) != 0
}

// InsertLocked adds fp to bucket. The caller must hold the block lock; the
// lock bit is preserved. It returns false if the block is full. The mutation
// is prepared on a private copy and written back with atomic word stores so
// concurrent optimistic snapshots never race with it.
func (b *Block8) InsertLocked(bucket uint, fp byte) bool {
	lo, hi := b.metaLocked()
	if occupancy128(lo, hi) == B8Slots {
		return false
	}
	buf := b.Fps // private copy; plain read is safe under the lock
	// The forced top bit (spurious when not full) is discarded by the shift;
	// re-set it afterwards: it is the still-held lock, and coincides with the
	// final terminator if the insert filled the block.
	newLo, newHi, _ := insertSlot8(lo, hi, &buf, bucket, fp)
	b.publishFps(&buf)
	atomic.StoreUint64(&b.MetaLo, newLo)
	atomic.StoreUint64(&b.MetaHi, newHi|lockBit)
	return true
}

// RemoveLocked deletes one instance of fp from bucket. The caller must hold
// the block lock; the lock bit is preserved. It returns false if fp is not
// present in bucket.
func (b *Block8) RemoveLocked(bucket uint, fp byte) bool {
	lo, hi := b.metaLocked()
	// The logical top bit is 1 only when the block is full; otherwise the
	// forced lock bit must not shift down into the metadata body.
	hiLog := hi &^ lockBit
	if occupancy128(lo, hi) == B8Slots {
		hiLog |= lockBit
	}
	buf := b.Fps
	newLo, newHi, z := removeSlot8(lo, hi, hiLog, &buf, bucket, swar.BroadcastByte(fp))
	if z < 0 {
		return false
	}
	b.publishFps(&buf)
	atomic.StoreUint64(&b.MetaLo, newLo)
	atomic.StoreUint64(&b.MetaHi, newHi|lockBit)
	return true
}

// publishFps stores the prepared fingerprint words with atomic word stores.
// The caller must hold the block lock.
func (b *Block8) publishFps(buf *[swar.Words8]uint64) {
	for i := range buf {
		atomic.StoreUint64(&b.Fps[i], buf[i])
	}
}

// TryLock attempts to acquire the block's lock bit; it reports success.
func (b *Block16) TryLock() bool {
	old := atomic.LoadUint64(&b.Meta)
	if old&lockBit != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(&b.Meta, old, old|lockBit)
}

// Lock spins until the block's lock bit is acquired.
func (b *Block16) Lock() {
	for i := 0; ; i++ {
		if b.TryLock() {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the block's lock bit.
func (b *Block16) Unlock() {
	atomic.StoreUint64(&b.Meta, atomic.LoadUint64(&b.Meta)&^lockBit)
}

// UnlockBump publishes a mutation and releases the lock; see
// Block8.UnlockBump.
func (b *Block16) UnlockBump(seq *atomic.Uint64) {
	seq.Add(1)
	b.Unlock()
}

func (b *Block16) metaLocked() uint64 {
	return atomic.LoadUint64(&b.Meta) | lockBit
}

// occupancy64 computes the locked-mode occupancy from an explicit metadata
// word; see occupancy128.
func occupancy64(meta uint64) uint {
	real := meta &^ lockBit
	if bits.OnesCount64(real) == B16Buckets-1 {
		return B16Slots
	}
	return uint(bits.Len64(real)) - B16Buckets
}

// OccupancyLocked returns the block occupancy under the locked-mode metadata
// convention; see Block8.OccupancyLocked.
func (b *Block16) OccupancyLocked() uint {
	return occupancy64(atomic.LoadUint64(&b.Meta))
}

func bucketRange64(meta uint64, bucket uint) (start, end uint) {
	if bucket == 0 {
		return 0, uint(bits.TrailingZeros64(meta))
	}
	p := bitvec.Select64(meta, bucket-1)
	rest := meta >> (p + 1) << (p + 1)
	q := uint(bits.TrailingZeros64(rest))
	return p - bucket + 1, q - bucket
}

// ContainsLocked reports whether fp is present in bucket. The caller must
// hold the block lock.
func (b *Block16) ContainsLocked(bucket uint, fp uint16) bool {
	return b.ContainsLockedB(bucket, swar.BroadcastU16(fp))
}

// ContainsLockedB is ContainsLocked with a pre-broadcast fingerprint.
func (b *Block16) ContainsLockedB(bucket uint, bcast uint64) bool {
	return probe16(b.metaLocked(), &b.Fps, bucket, bcast) != 0
}

// InsertLocked adds fp to bucket. The caller must hold the block lock. The
// mutation is prepared on a private copy and written back atomically; see
// Block8.InsertLocked.
func (b *Block16) InsertLocked(bucket uint, fp uint16) bool {
	meta := b.metaLocked()
	if occupancy64(meta) == B16Slots {
		return false
	}
	buf := b.Fps
	newMeta, _ := insertSlot16(meta, &buf, bucket, fp)
	b.publishFps(&buf)
	atomic.StoreUint64(&b.Meta, newMeta|lockBit)
	return true
}

// RemoveLocked deletes one instance of fp from bucket. The caller must hold
// the block lock.
func (b *Block16) RemoveLocked(bucket uint, fp uint16) bool {
	meta := b.metaLocked()
	metaLog := meta &^ lockBit
	if occupancy64(meta) == B16Slots {
		metaLog |= lockBit
	}
	buf := b.Fps
	newMeta, z := removeSlot16(meta, metaLog, &buf, bucket, swar.BroadcastU16(fp))
	if z < 0 {
		return false
	}
	b.publishFps(&buf)
	atomic.StoreUint64(&b.Meta, newMeta|lockBit)
	return true
}

// publishFps stores the prepared fingerprint words with atomic word stores.
// The caller must hold the block lock.
func (b *Block16) publishFps(buf *[swar.Words16]uint64) {
	for i := range buf {
		atomic.StoreUint64(&b.Fps[i], buf[i])
	}
}
