//go:build amd64 && !purego

package minifilter

import (
	"math/rand"
	"testing"

	"vqf/internal/swar"
)

// Differential parity gate for the fused assembly probes: over randomly
// filled valid blocks, every (bucket, fingerprint) probe must agree
// bit-for-bit with the generic kernel. Metadata validity is part of the
// kernel contract (see kernel_amd64.go), so blocks are built through the
// real insert path rather than from raw random words.

func fillBlock8(r *rand.Rand, n int) (*Block8, []byte) {
	var b Block8
	b.Reset()
	fps := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		bucket := uint(r.Intn(B8Buckets))
		fp := byte(r.Uint32())
		if !b.Insert(bucket, fp) {
			break
		}
		fps = append(fps, fp)
	}
	return &b, fps
}

func fillBlock16(r *rand.Rand, n int) (*Block16, []uint16) {
	var b Block16
	b.Reset()
	fps := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		bucket := uint(r.Intn(B16Buckets))
		fp := uint16(r.Uint32())
		if !b.Insert(bucket, fp) {
			break
		}
		fps = append(fps, fp)
	}
	return &b, fps
}

func TestFusedProbe8Parity(t *testing.T) {
	if !swar.HasFastSelect() {
		t.Skip("CPU lacks PDEP/TZCNT/POPCNT")
	}
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		b, inserted := fillBlock8(r, r.Intn(B8Slots+1))
		probes := []byte{0, byte(r.Uint32())}
		if len(inserted) > 0 {
			probes = append(probes, inserted[r.Intn(len(inserted))])
		}
		for bucket := uint(0); bucket < B8Buckets; bucket++ {
			for _, fp := range probes {
				bc := swar.BroadcastByte(fp)
				got := fusedProbe8Asm(b.MetaLo, b.MetaHi, &b.Fps, bucket, bc)
				want := probe8Generic(b.MetaLo, b.MetaHi, &b.Fps, bucket, bc)
				if got != want {
					t.Fatalf("probe8 bucket %d fp %#x occ %d: asm %#x generic %#x (lo %#x hi %#x)",
						bucket, fp, b.Occupancy(), got, want, b.MetaLo, b.MetaHi)
				}
			}
		}
	}
}

func TestFusedProbe16Parity(t *testing.T) {
	if !swar.HasFastSelect() {
		t.Skip("CPU lacks PDEP/TZCNT/POPCNT")
	}
	r := rand.New(rand.NewSource(12))
	for iter := 0; iter < 400; iter++ {
		b, inserted := fillBlock16(r, r.Intn(B16Slots+1))
		probes := []uint16{0, uint16(r.Uint32())}
		if len(inserted) > 0 {
			probes = append(probes, inserted[r.Intn(len(inserted))])
		}
		for bucket := uint(0); bucket < B16Buckets; bucket++ {
			for _, fp := range probes {
				bc := swar.BroadcastU16(fp)
				got := fusedProbe16Asm(b.Meta, &b.Fps, bucket, bc)
				want := probe16Generic(b.Meta, &b.Fps, bucket, bc)
				if got != want {
					t.Fatalf("probe16 bucket %d fp %#x occ %d: asm %#x generic %#x (meta %#x)",
						bucket, fp, b.Occupancy(), got, want, b.Meta)
				}
			}
		}
	}
}

// TestFusedProbeLockedForm exercises the locked-mode metadata form (top bit
// forced) that the locked and optimistic callers feed the kernels: parity
// must hold for it as well, including on a completely full block where the
// forced bit is the real 80th (resp. 36th) terminator.
func TestFusedProbeLockedForm(t *testing.T) {
	if !swar.HasFastSelect() {
		t.Skip("CPU lacks PDEP/TZCNT/POPCNT")
	}
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, B8Slots / 2, B8Slots} {
		b, _ := fillBlock8(r, n)
		lo, hi := b.MetaLo, b.MetaHi|1<<63
		for bucket := uint(0); bucket < B8Buckets; bucket++ {
			bc := swar.BroadcastByte(byte(bucket))
			if got, want := fusedProbe8Asm(lo, hi, &b.Fps, bucket, bc), probe8Generic(lo, hi, &b.Fps, bucket, bc); got != want {
				t.Fatalf("locked probe8 n %d bucket %d: asm %#x generic %#x", n, bucket, got, want)
			}
		}
	}
	for _, n := range []int{0, 1, B16Slots / 2, B16Slots} {
		b, _ := fillBlock16(r, n)
		meta := b.Meta | 1<<63
		for bucket := uint(0); bucket < B16Buckets; bucket++ {
			bc := swar.BroadcastU16(uint16(bucket))
			if got, want := fusedProbe16Asm(meta, &b.Fps, bucket, bc), probe16Generic(meta, &b.Fps, bucket, bc); got != want {
				t.Fatalf("locked probe16 n %d bucket %d: asm %#x generic %#x", n, bucket, got, want)
			}
		}
	}
}

// FuzzFusedProbeParity is the fuzz form of the probe parity gate: arbitrary
// insert sequences (bucket, fingerprint pairs drawn from the corpus bytes)
// build a valid block, then every bucket is probed with both kernels.
func FuzzFusedProbeParity(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1}, uint16(0))
	f.Add([]byte("fuzzing builds character and valid metadata"), uint16(0x2a2a))
	f.Fuzz(func(t *testing.T, ops []byte, fp uint16) {
		if !swar.HasFastSelect() {
			t.Skip("CPU lacks PDEP/TZCNT/POPCNT")
		}
		var b8 Block8
		b8.Reset()
		var b16 Block16
		b16.Reset()
		for i := 0; i+1 < len(ops); i += 2 {
			b8.Insert(uint(ops[i])%B8Buckets, ops[i+1])
			b16.Insert(uint(ops[i])%B16Buckets, uint16(ops[i+1])|uint16(ops[i])<<8)
		}
		bc8 := swar.BroadcastByte(byte(fp))
		bc16 := swar.BroadcastU16(fp)
		for bucket := uint(0); bucket < B8Buckets; bucket++ {
			got := fusedProbe8Asm(b8.MetaLo, b8.MetaHi, &b8.Fps, bucket, bc8)
			want := probe8Generic(b8.MetaLo, b8.MetaHi, &b8.Fps, bucket, bc8)
			if got != want {
				t.Errorf("probe8 bucket %d: asm %#x generic %#x", bucket, got, want)
			}
		}
		for bucket := uint(0); bucket < B16Buckets; bucket++ {
			got := fusedProbe16Asm(b16.Meta, &b16.Fps, bucket, bc16)
			want := probe16Generic(b16.Meta, &b16.Fps, bucket, bc16)
			if got != want {
				t.Errorf("probe16 bucket %d: asm %#x generic %#x", bucket, got, want)
			}
		}
	})
}
