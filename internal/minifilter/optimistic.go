package minifilter

import (
	"runtime"
	"sync/atomic"

	"vqf/internal/swar"
)

// Lock-free optimistic reads (seqlock style). A reader never acquires the
// block lock on the common path: it copies the block with atomic word loads
// and validates that no writer overlapped the copy, retrying (and eventually
// falling back to the lock) on conflict. Writers keep the lock bit set
// through their atomic write-back and bump an external version counter
// before releasing it (Block8.UnlockBump), which gives readers two conflict
// signals:
//
//   - the lock bit, observed before the copy and again after it, catches any
//     writer active while the copy was in flight;
//   - the version counter, read before the lock-bit pre-check and re-read
//     after the lock-bit post-check, catches any writer that ran to
//     completion inside the window.
//
// The explicit version is what defeats the ABA hazard: a remove-then-insert
// on the same bucket restores bit-identical metadata words while changing
// fingerprint bytes, so revalidating the metadata alone would accept a torn
// snapshot. Every mutation bumps the (monotonic, 64-bit) version, so the
// reader's version check fails no matter how the words compare.
//
// Validation order matters. snapRead loads the version BEFORE the lock-bit
// check and the copy; snapValidate re-checks the lock bit BEFORE re-reading
// the version. For any writer storing during the copy window: if it had the
// lock at the pre-check the reader bailed immediately; if it still holds the
// lock at the post-check the reader sees the bit; and if it released in
// between, its version bump (which precedes release) lands between the two
// version reads. A writer that completed entirely before the version
// pre-read finished its stores before the copy began, so the snapshot is
// consistent. Go's sync/atomic operations are sequentially consistent, which
// is what makes these orderings global.
//
// The version counters live outside the 64-byte blocks (there is no spare
// bit inside) and are owned by the concurrent filters in internal/core,
// striped across blocks; sharing a stripe only causes spurious retries,
// never missed conflicts.

// optRetries bounds optimistic attempts before falling back to the lock. A
// conflict means a writer is active on the block (or a stripe neighbor), so
// the reader yields between attempts rather than spinning.
const optRetries = 4

// OptRetryBudget is the per-read retry budget (optRetries), exported for
// callers that reason about retry/fallback counter accounting: a read that
// fell back reports exactly this many retries.
const OptRetryBudget = optRetries

// snap8 is an optimistic reader's private copy of a Block8, plus the version
// observed before the copy. Fields hold the locked-mode logical form (top
// metadata bit forced to 1); fps is the word-native fingerprint array,
// probed with the same fused kernel the plain and locked paths use.
type snap8 struct {
	lo, hi uint64
	fps    [swar.Words8]uint64
	ver    uint64
}

// snapRead copies the block without taking the lock. It fails if a writer
// holds the lock bit. On success the copy must still be checked with
// snapValidate before use.
func (b *Block8) snapRead(seq *atomic.Uint64, s *snap8) bool {
	s.ver = seq.Load()
	hi := atomic.LoadUint64(&b.MetaHi)
	if hi&lockBit != 0 {
		return false
	}
	s.hi = hi | lockBit
	s.lo = atomic.LoadUint64(&b.MetaLo)
	for i := range s.fps {
		s.fps[i] = atomic.LoadUint64(&b.Fps[i])
	}
	return true
}

// snapValidate reports whether the copy taken by snapRead is consistent:
// no writer was active at any point during the copy.
func (b *Block8) snapValidate(seq *atomic.Uint64, s *snap8) bool {
	if atomic.LoadUint64(&b.MetaHi)&lockBit != 0 {
		return false
	}
	return seq.Load() == s.ver
}

// ContainsOptimistic reports whether fp is present in bucket without taking
// the block lock in the common case: it snapshots the block against the
// version stripe seq and scans the private copy. After optRetries conflicts
// it falls back to a locked scan, so the operation always terminates even
// under a continuous writer storm.
func (b *Block8) ContainsOptimistic(seq *atomic.Uint64, bucket uint, fp byte) bool {
	found, _, _ := b.ContainsOptimisticCountedB(seq, bucket, swar.BroadcastByte(fp))
	return found
}

// ContainsOptimisticCounted is ContainsOptimistic reporting how the read
// resolved: retries is the number of conflicted snapshot attempts, and
// fellBack is true when the retry budget was exhausted and the scan ran
// under the block lock. The counts feed the internal/stats counters.
func (b *Block8) ContainsOptimisticCounted(seq *atomic.Uint64, bucket uint, fp byte) (found bool, retries uint, fellBack bool) {
	return b.ContainsOptimisticCountedB(seq, bucket, swar.BroadcastByte(fp))
}

// ContainsOptimisticCountedB is ContainsOptimisticCounted with a
// pre-broadcast fingerprint, so a two-block probe broadcasts once.
func (b *Block8) ContainsOptimisticCountedB(seq *atomic.Uint64, bucket uint, bcast uint64) (found bool, retries uint, fellBack bool) {
	var s snap8
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return probe8(s.lo, s.hi, &s.fps, bucket, bcast) != 0, uint(i), false
		}
		runtime.Gosched()
	}
	b.Lock()
	found = b.ContainsLockedB(bucket, bcast)
	b.Unlock()
	return found, optRetries, true
}

// OccupancyOptimistic returns the block occupancy from a validated lock-free
// read of the metadata words. ok is false after repeated conflicts; the
// caller should then fall back to its locked path.
func (b *Block8) OccupancyOptimistic(seq *atomic.Uint64) (occ uint, ok bool) {
	occ, _, ok = b.OccupancyOptimisticCounted(seq)
	return occ, ok
}

// OccupancyOptimisticCounted is OccupancyOptimistic reporting the number of
// conflicted attempts; see ContainsOptimisticCounted.
func (b *Block8) OccupancyOptimisticCounted(seq *atomic.Uint64) (occ uint, retries uint, ok bool) {
	for i := 0; i < optRetries; i++ {
		ver := seq.Load()
		hi := atomic.LoadUint64(&b.MetaHi)
		if hi&lockBit == 0 {
			lo := atomic.LoadUint64(&b.MetaLo)
			if atomic.LoadUint64(&b.MetaHi)&lockBit == 0 && seq.Load() == ver {
				return occupancy128(lo, hi|lockBit), uint(i), true
			}
		}
		runtime.Gosched()
	}
	return 0, optRetries, false
}

// snap16 is an optimistic reader's private copy of a Block16; see snap8.
type snap16 struct {
	meta uint64
	fps  [swar.Words16]uint64
	ver  uint64
}

// snapRead copies the block without taking the lock; see Block8.snapRead.
func (b *Block16) snapRead(seq *atomic.Uint64, s *snap16) bool {
	s.ver = seq.Load()
	meta := atomic.LoadUint64(&b.Meta)
	if meta&lockBit != 0 {
		return false
	}
	s.meta = meta | lockBit
	for i := range s.fps {
		s.fps[i] = atomic.LoadUint64(&b.Fps[i])
	}
	return true
}

// snapValidate reports whether the copy taken by snapRead is consistent.
func (b *Block16) snapValidate(seq *atomic.Uint64, s *snap16) bool {
	if atomic.LoadUint64(&b.Meta)&lockBit != 0 {
		return false
	}
	return seq.Load() == s.ver
}

// ContainsOptimistic is the lock-free lookup; see Block8.ContainsOptimistic.
func (b *Block16) ContainsOptimistic(seq *atomic.Uint64, bucket uint, fp uint16) bool {
	found, _, _ := b.ContainsOptimisticCountedB(seq, bucket, swar.BroadcastU16(fp))
	return found
}

// ContainsOptimisticCounted is the counted lock-free lookup; see
// Block8.ContainsOptimisticCounted.
func (b *Block16) ContainsOptimisticCounted(seq *atomic.Uint64, bucket uint, fp uint16) (found bool, retries uint, fellBack bool) {
	return b.ContainsOptimisticCountedB(seq, bucket, swar.BroadcastU16(fp))
}

// ContainsOptimisticCountedB is the counted lock-free lookup with a
// pre-broadcast fingerprint; see Block8.ContainsOptimisticCountedB.
func (b *Block16) ContainsOptimisticCountedB(seq *atomic.Uint64, bucket uint, bcast uint64) (found bool, retries uint, fellBack bool) {
	var s snap16
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return probe16(s.meta, &s.fps, bucket, bcast) != 0, uint(i), false
		}
		runtime.Gosched()
	}
	b.Lock()
	found = b.ContainsLockedB(bucket, bcast)
	b.Unlock()
	return found, optRetries, true
}

// OccupancyOptimistic is the lock-free occupancy probe; see
// Block8.OccupancyOptimistic.
func (b *Block16) OccupancyOptimistic(seq *atomic.Uint64) (occ uint, ok bool) {
	occ, _, ok = b.OccupancyOptimisticCounted(seq)
	return occ, ok
}

// OccupancyOptimisticCounted is the counted lock-free occupancy probe; see
// Block8.OccupancyOptimisticCounted.
func (b *Block16) OccupancyOptimisticCounted(seq *atomic.Uint64) (occ uint, retries uint, ok bool) {
	for i := 0; i < optRetries; i++ {
		ver := seq.Load()
		meta := atomic.LoadUint64(&b.Meta)
		if meta&lockBit == 0 {
			if atomic.LoadUint64(&b.Meta)&lockBit == 0 && seq.Load() == ver {
				return occupancy64(meta | lockBit), uint(i), true
			}
		}
		runtime.Gosched()
	}
	return 0, optRetries, false
}
