package minifilter

import (
	"math/rand"
	"sync"
	"testing"

	"vqf/internal/swar"
)

// logicalState8 extracts the lock-independent view of a locked-mode block:
// metadata with the top bit forced to (full ? 1 : 0), plus the fingerprints.
func logicalState8(b *Block8) (uint64, uint64, [swar.Words8]uint64) {
	lo, hi := b.MetaLo, b.MetaHi|lockBit
	occ := b.OccupancyLocked()
	hi &^= lockBit
	if occ == B8Slots {
		hi |= lockBit
	}
	return lo, hi, b.Fps
}

// TestBlock8LockedEquivalence runs an identical op sequence through the plain
// and locked variants and requires the same logical state at every step.
func TestBlock8LockedEquivalence(t *testing.T) {
	var plain, locked Block8
	plain.Reset()
	locked.Reset()
	locked.Lock()
	defer locked.Unlock()
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			a := plain.Insert(bucket, fp)
			b := locked.InsertLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: insert plain=%v locked=%v", step, a, b)
			}
		case 1:
			a := plain.Remove(bucket, fp)
			b := locked.RemoveLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: remove plain=%v locked=%v", step, a, b)
			}
		case 2:
			a := plain.Contains(bucket, fp)
			b := locked.ContainsLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: contains plain=%v locked=%v", step, a, b)
			}
		}
		if plain.Occupancy() != locked.OccupancyLocked() {
			t.Fatalf("step %d: occupancy diverged %d vs %d",
				step, plain.Occupancy(), locked.OccupancyLocked())
		}
		lo, hi, fps := logicalState8(&locked)
		if lo != plain.MetaLo || hi != plain.MetaHi || fps != plain.Fps {
			t.Fatalf("step %d: logical state diverged", step)
		}
	}
}

func TestBlock8LockedFullBlock(t *testing.T) {
	var b Block8
	b.Reset()
	b.Lock()
	// Fill to capacity through the locked path.
	rng := rand.New(rand.NewSource(2))
	type entry struct {
		bucket uint
		fp     byte
	}
	var entries []entry
	for i := 0; i < B8Slots; i++ {
		e := entry{uint(rng.Intn(B8Buckets)), byte(rng.Intn(256))}
		if !b.InsertLocked(e.bucket, e.fp) {
			t.Fatalf("locked insert %d failed", i)
		}
		entries = append(entries, e)
	}
	if b.OccupancyLocked() != B8Slots {
		t.Fatal("block not full")
	}
	if b.InsertLocked(0, 0) {
		t.Fatal("insert into full block succeeded")
	}
	b.Unlock()

	// After unlock the stored top bit is the lock flag (0), but a fresh
	// lock/read cycle must still see a full block with all entries.
	b.Lock()
	if b.OccupancyLocked() != B8Slots {
		t.Fatal("occupancy lost across unlock of full block")
	}
	for _, e := range entries {
		if !b.ContainsLocked(e.bucket, e.fp) {
			t.Fatalf("entry (%d,%d) lost across unlock", e.bucket, e.fp)
		}
	}
	// Remove from the full block, then re-insert.
	if !b.RemoveLocked(entries[3].bucket, entries[3].fp) {
		t.Fatal("remove from full block failed")
	}
	if b.OccupancyLocked() != B8Slots-1 {
		t.Fatal("occupancy wrong after remove")
	}
	if !b.InsertLocked(9, 123) {
		t.Fatal("insert after remove failed")
	}
	b.Unlock()
}

func TestBlock8TryLock(t *testing.T) {
	var b Block8
	b.Reset()
	if !b.TryLock() {
		t.Fatal("TryLock on unlocked block failed")
	}
	if b.TryLock() {
		t.Fatal("TryLock on locked block succeeded")
	}
	b.Unlock()
	if !b.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	b.Unlock()
}

func TestBlock16LockedEquivalence(t *testing.T) {
	var plain, locked Block16
	plain.Reset()
	locked.Reset()
	locked.Lock()
	defer locked.Unlock()
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B16Buckets))
		fp := uint16(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			a := plain.Insert(bucket, fp)
			b := locked.InsertLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: insert plain=%v locked=%v", step, a, b)
			}
		case 1:
			a := plain.Remove(bucket, fp)
			b := locked.RemoveLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: remove plain=%v locked=%v", step, a, b)
			}
		case 2:
			a := plain.Contains(bucket, fp)
			b := locked.ContainsLocked(bucket, fp)
			if a != b {
				t.Fatalf("step %d: contains plain=%v locked=%v", step, a, b)
			}
		}
		if plain.Occupancy() != locked.OccupancyLocked() {
			t.Fatalf("step %d: occupancy diverged", step)
		}
		if plain.Fps != locked.Fps {
			t.Fatalf("step %d: fingerprints diverged", step)
		}
	}
}

func TestBlock16LockedFullBlock(t *testing.T) {
	var b Block16
	b.Reset()
	b.Lock()
	for i := 0; i < B16Slots; i++ {
		if !b.InsertLocked(uint(i%B16Buckets), uint16(i)) {
			t.Fatalf("locked insert %d failed", i)
		}
	}
	if b.InsertLocked(0, 999) {
		t.Fatal("insert into full block succeeded")
	}
	b.Unlock()
	b.Lock()
	if b.OccupancyLocked() != B16Slots {
		t.Fatal("occupancy lost across unlock of full block")
	}
	if !b.RemoveLocked(0, 0) {
		t.Fatal("remove failed")
	}
	b.Unlock()
}

// TestBlock8ConcurrentStress hammers one block from several goroutines. Run
// with -race to exercise the memory-ordering contract: MetaHi is only touched
// atomically, everything else only under the lock.
func TestBlock8ConcurrentStress(t *testing.T) {
	var b Block8
	b.Reset()
	const workers = 4
	const opsPerWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			inserted := []modelKey{}
			for i := 0; i < opsPerWorker; i++ {
				bucket := uint(rng.Intn(B8Buckets))
				fp := byte(rng.Intn(256))
				b.Lock()
				switch {
				case len(inserted) > 0 && rng.Intn(3) == 0:
					k := inserted[len(inserted)-1]
					inserted = inserted[:len(inserted)-1]
					if !b.RemoveLocked(k.bucket, byte(k.fp)) {
						t.Errorf("own insertion (%d,%d) missing", k.bucket, k.fp)
					}
				case rng.Intn(2) == 0:
					if b.InsertLocked(bucket, fp) {
						inserted = append(inserted, modelKey{bucket, uint16(fp)})
					}
				default:
					b.ContainsLocked(bucket, fp)
				}
				b.Unlock()
			}
			// Drain our own insertions.
			for _, k := range inserted {
				b.Lock()
				if !b.RemoveLocked(k.bucket, byte(k.fp)) {
					t.Errorf("own insertion (%d,%d) missing at drain", k.bucket, k.fp)
				}
				b.Unlock()
			}
		}(int64(w + 100))
	}
	wg.Wait()
	b.Lock()
	if occ := b.OccupancyLocked(); occ != 0 {
		t.Fatalf("occupancy %d after all workers drained", occ)
	}
	b.Unlock()
}
