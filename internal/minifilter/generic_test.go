package minifilter

import (
	"math/rand"
	"testing"
)

// TestBlock8GenericEquivalence drives an identical random operation sequence
// through the SWAR block operations and the loop-based generic operations and
// requires bit-identical block state throughout. This is the correctness leg
// of the §7.7 ablation: both variants must implement the same structure.
func TestBlock8GenericEquivalence(t *testing.T) {
	var fast, slow Block8
	fast.Reset()
	slow.Reset()
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			a := fast.Insert(bucket, fp)
			b := slow.InsertGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: insert fast=%v slow=%v", step, a, b)
			}
		case 1:
			a := fast.Remove(bucket, fp)
			b := slow.RemoveGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: remove fast=%v slow=%v", step, a, b)
			}
		case 2:
			a := fast.Contains(bucket, fp)
			b := slow.ContainsGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: contains fast=%v slow=%v", step, a, b)
			}
		}
		if fast.MetaLo != slow.MetaLo || fast.MetaHi != slow.MetaHi {
			t.Fatalf("step %d: metadata diverged: %#x/%#x vs %#x/%#x",
				step, fast.MetaLo, fast.MetaHi, slow.MetaLo, slow.MetaHi)
		}
		if fast.Fps != slow.Fps {
			t.Fatalf("step %d: fingerprint arrays diverged", step)
		}
	}
}

func TestBlock16GenericEquivalence(t *testing.T) {
	var fast, slow Block16
	fast.Reset()
	slow.Reset()
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B16Buckets))
		fp := uint16(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			a := fast.Insert(bucket, fp)
			b := slow.InsertGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: insert fast=%v slow=%v", step, a, b)
			}
		case 1:
			a := fast.Remove(bucket, fp)
			b := slow.RemoveGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: remove fast=%v slow=%v", step, a, b)
			}
		case 2:
			a := fast.Contains(bucket, fp)
			b := slow.ContainsGeneric(bucket, fp)
			if a != b {
				t.Fatalf("step %d: contains fast=%v slow=%v", step, a, b)
			}
		}
		if fast.Meta != slow.Meta || fast.Fps != slow.Fps {
			t.Fatalf("step %d: state diverged", step)
		}
	}
}

func TestGenericOccupancyMatches(t *testing.T) {
	var b8 Block8
	b8.Reset()
	var b16 Block16
	b16.Reset()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		b8.Insert(uint(rng.Intn(B8Buckets)), byte(i))
		if i < B16Slots {
			b16.Insert(uint(rng.Intn(B16Buckets)), uint16(i))
		}
		if b8.Occupancy() != b8.OccupancyGeneric() {
			t.Fatal("Block8 occupancy variants disagree")
		}
		if b16.Occupancy() != b16.OccupancyGeneric() {
			t.Fatal("Block16 occupancy variants disagree")
		}
	}
}

func BenchmarkBlock8InsertGeneric(b *testing.B) {
	var blk Block8
	blk.Reset()
	rng := rand.New(rand.NewSource(4))
	buckets := make([]uint, 1024)
	fps := make([]byte, 1024)
	for i := range buckets {
		buckets[i] = uint(rng.Intn(B8Buckets))
		fps[i] = byte(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 1023
		if !blk.InsertGeneric(buckets[j], fps[j]) {
			blk.Reset()
		}
	}
}
