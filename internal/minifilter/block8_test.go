package minifilter

import (
	"math/bits"
	"math/rand"
	"testing"
	"unsafe"
)

func TestBlock8IsOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(Block8{}); sz != 64 {
		t.Fatalf("Block8 is %d bytes, want 64", sz)
	}
}

func TestBlock8EmptyState(t *testing.T) {
	var b Block8
	b.Reset()
	if got := b.Occupancy(); got != 0 {
		t.Fatalf("empty occupancy = %d", got)
	}
	if b.Full() {
		t.Fatal("empty block reports full")
	}
	for bucket := uint(0); bucket < B8Buckets; bucket++ {
		if b.BucketCount(bucket) != 0 {
			t.Fatalf("bucket %d nonempty in fresh block", bucket)
		}
		if b.Contains(bucket, 0) {
			t.Fatalf("Contains(%d, 0) true in fresh block", bucket)
		}
	}
	// Metadata must hold exactly B8Buckets ones.
	if n := bits.OnesCount64(b.MetaLo) + bits.OnesCount64(b.MetaHi); n != B8Buckets {
		t.Fatalf("fresh metadata has %d ones, want %d", n, B8Buckets)
	}
}

func TestBlock8InsertContainsRemove(t *testing.T) {
	var b Block8
	b.Reset()
	for _, bucket := range []uint{0, 1, 40, 78, 79} {
		fp := byte(bucket*3 + 1)
		if !b.Insert(bucket, fp) {
			t.Fatalf("Insert(%d, %d) failed", bucket, fp)
		}
		if !b.Contains(bucket, fp) {
			t.Fatalf("Contains(%d, %d) false after insert", bucket, fp)
		}
		if b.Contains(bucket, fp+1) {
			t.Fatalf("Contains(%d, %d) true for non-inserted fp", bucket, fp+1)
		}
	}
	if got := b.Occupancy(); got != 5 {
		t.Fatalf("occupancy = %d, want 5", got)
	}
	for _, bucket := range []uint{0, 1, 40, 78, 79} {
		fp := byte(bucket*3 + 1)
		if !b.Remove(bucket, fp) {
			t.Fatalf("Remove(%d, %d) failed", bucket, fp)
		}
		if b.Contains(bucket, fp) {
			t.Fatalf("Contains(%d, %d) true after remove", bucket, fp)
		}
	}
	if got := b.Occupancy(); got != 0 {
		t.Fatalf("occupancy after removes = %d", got)
	}
}

func TestBlock8SameFingerprintDifferentBuckets(t *testing.T) {
	var b Block8
	b.Reset()
	const fp = 0x7f
	for _, bucket := range []uint{2, 3, 50} {
		if !b.Insert(bucket, fp) {
			t.Fatal("insert failed")
		}
	}
	for _, bucket := range []uint{2, 3, 50} {
		if !b.Contains(bucket, fp) {
			t.Fatalf("bucket %d missing fp", bucket)
		}
	}
	if b.Contains(4, fp) {
		t.Fatal("fp leaked into bucket 4")
	}
	// Removing from one bucket must not disturb the others.
	if !b.Remove(3, fp) {
		t.Fatal("remove failed")
	}
	if b.Contains(3, fp) {
		t.Fatal("fp still in bucket 3")
	}
	if !b.Contains(2, fp) || !b.Contains(50, fp) {
		t.Fatal("remove disturbed sibling buckets")
	}
}

func TestBlock8Duplicates(t *testing.T) {
	var b Block8
	b.Reset()
	for i := 0; i < 3; i++ {
		if !b.Insert(7, 0xaa) {
			t.Fatal("duplicate insert failed")
		}
	}
	if got := b.BucketCount(7); got != 3 {
		t.Fatalf("BucketCount = %d, want 3", got)
	}
	// Each remove deletes exactly one copy.
	for i := 3; i > 0; i-- {
		if !b.Contains(7, 0xaa) {
			t.Fatalf("fp missing with %d copies left", i)
		}
		if !b.Remove(7, 0xaa) {
			t.Fatal("remove failed")
		}
	}
	if b.Contains(7, 0xaa) {
		t.Fatal("fp present after removing all copies")
	}
	if b.Remove(7, 0xaa) {
		t.Fatal("remove of absent fp succeeded")
	}
}

func TestBlock8FillToCapacity(t *testing.T) {
	var b Block8
	b.Reset()
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		bucket uint
		fp     byte
	}
	var entries []entry
	for i := 0; i < B8Slots; i++ {
		e := entry{uint(rng.Intn(B8Buckets)), byte(rng.Intn(256))}
		if !b.Insert(e.bucket, e.fp) {
			t.Fatalf("insert %d failed before capacity", i)
		}
		entries = append(entries, e)
	}
	if !b.Full() {
		t.Fatal("block not full after 48 inserts")
	}
	if b.Insert(0, 1) {
		t.Fatal("insert into full block succeeded")
	}
	// Every inserted entry must still be present.
	for _, e := range entries {
		if !b.Contains(e.bucket, e.fp) {
			t.Fatalf("entry (%d,%d) lost", e.bucket, e.fp)
		}
	}
	// When full, the top metadata bit must be the final terminator.
	if b.MetaHi>>63 != 1 {
		t.Fatal("top metadata bit not set in full block")
	}
	// Free one slot, insert succeeds again.
	if !b.Remove(entries[0].bucket, entries[0].fp) {
		t.Fatal("remove from full block failed")
	}
	if b.Full() {
		t.Fatal("still full after remove")
	}
	if !b.Insert(5, 99) {
		t.Fatal("insert after freeing a slot failed")
	}
}

// modelKey identifies a (bucket, fingerprint) pair in the reference model.
type modelKey struct {
	bucket uint
	fp     uint16
}

func TestBlock8ModelBased(t *testing.T) {
	var b Block8
	b.Reset()
	model := map[modelKey]int{}
	occ := 0
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 30000; step++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(8)) // small alphabet to force duplicates
		k := modelKey{bucket, uint16(fp)}
		switch rng.Intn(3) {
		case 0: // insert
			ok := b.Insert(bucket, fp)
			if ok != (occ < B8Slots) {
				t.Fatalf("step %d: insert ok=%v occ=%d", step, ok, occ)
			}
			if ok {
				model[k]++
				occ++
			}
		case 1: // remove
			ok := b.Remove(bucket, fp)
			if ok != (model[k] > 0) {
				t.Fatalf("step %d: remove ok=%v model=%d", step, ok, model[k])
			}
			if ok {
				model[k]--
				if model[k] == 0 {
					delete(model, k)
				}
				occ--
			}
		case 2: // lookup
			if got, want := b.Contains(bucket, fp), model[k] > 0; got != want {
				t.Fatalf("step %d: contains=%v want %v", step, got, want)
			}
		}
		if step%997 == 0 {
			if got := b.Occupancy(); got != uint(occ) {
				t.Fatalf("step %d: occupancy=%d model=%d", step, got, occ)
			}
			// Metadata invariant: exactly B8Buckets ones and occ zeros in use.
			ones := bits.OnesCount64(b.MetaLo) + bits.OnesCount64(b.MetaHi)
			if ones != B8Buckets {
				t.Fatalf("step %d: %d ones in metadata", step, ones)
			}
		}
	}
	// Final sweep: every model entry present with the right multiplicity.
	for k, n := range model {
		if !b.Contains(k.bucket, byte(k.fp)) {
			t.Fatalf("model entry (%d,%d)x%d missing", k.bucket, k.fp, n)
		}
	}
}

func TestBlock8BucketCountsMatchModel(t *testing.T) {
	var b Block8
	b.Reset()
	counts := map[uint]uint{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < B8Slots; i++ {
		bucket := uint(rng.Intn(B8Buckets))
		if !b.Insert(bucket, byte(rng.Intn(256))) {
			t.Fatal("insert failed")
		}
		counts[bucket]++
	}
	for bucket := uint(0); bucket < B8Buckets; bucket++ {
		if got := b.BucketCount(bucket); got != counts[bucket] {
			t.Fatalf("bucket %d count = %d, want %d", bucket, got, counts[bucket])
		}
	}
}

func BenchmarkBlock8Insert(b *testing.B) {
	var blk Block8
	blk.Reset()
	rng := rand.New(rand.NewSource(4))
	buckets := make([]uint, 1024)
	fps := make([]byte, 1024)
	for i := range buckets {
		buckets[i] = uint(rng.Intn(B8Buckets))
		fps[i] = byte(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 1023
		if !blk.Insert(buckets[j], fps[j]) {
			blk.Reset()
		}
	}
}

func BenchmarkBlock8Contains(b *testing.B) {
	var blk Block8
	blk.Reset()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		blk.Insert(uint(rng.Intn(B8Buckets)), byte(rng.Intn(256)))
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = blk.Contains(uint(i)%B8Buckets, byte(i))
	}
	_ = sink
}
