package minifilter

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// iterFill8 inserts n random (bucket, fp) pairs and returns them in slot
// order (sorted by bucket, instances of one bucket in insertion-reversed
// order is fine: the multiset is what iteration must reproduce).
func iterFill8(t *testing.T, b *Block8, rng *rand.Rand, n int) map[[2]uint16]int {
	t.Helper()
	want := map[[2]uint16]int{}
	for i := 0; i < n; i++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(256))
		if !b.Insert(bucket, fp) {
			t.Fatalf("insert %d failed below capacity", i)
		}
		want[[2]uint16{uint16(bucket), uint16(fp)}]++
	}
	return want
}

func collect8(b *Block8) (pairs [][2]uint16, buckets []uint) {
	b.Iterate(func(bucket uint, fp byte) bool {
		pairs = append(pairs, [2]uint16{uint16(bucket), uint16(fp)})
		buckets = append(buckets, bucket)
		return true
	})
	return
}

func TestIterateBlock8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 31, B8Slots} {
		var b Block8
		b.Reset()
		want := iterFill8(t, &b, rng, n)
		pairs, buckets := collect8(&b)
		if len(pairs) != n {
			t.Fatalf("n=%d: iterated %d slots", n, len(pairs))
		}
		got := map[[2]uint16]int{}
		for _, p := range pairs {
			got[p]++
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("n=%d: pair %v count %d, want %d", n, k, got[k], c)
			}
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("n=%d: buckets not monotone: %v", n, buckets)
			}
		}
	}
}

func TestIterateBlock16(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 19, B16Slots} {
		var b Block16
		b.Reset()
		want := map[[2]uint32]int{}
		for i := 0; i < n; i++ {
			bucket := uint(rng.Intn(B16Buckets))
			fp := uint16(rng.Intn(1 << 16))
			if !b.Insert(bucket, fp) {
				t.Fatalf("insert %d failed below capacity", i)
			}
			want[[2]uint32{uint32(bucket), uint32(fp)}]++
		}
		got := map[[2]uint32]int{}
		count := 0
		b.Iterate(func(bucket uint, fp uint16) bool {
			got[[2]uint32{uint32(bucket), uint32(fp)}]++
			count++
			return true
		})
		if count != n {
			t.Fatalf("n=%d: iterated %d slots", n, count)
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("n=%d: pair %v count %d, want %d", n, k, got[k], c)
			}
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	var b Block8
	b.Reset()
	for i := 0; i < 10; i++ {
		b.Insert(uint(i), byte(i))
	}
	seen := 0
	if b.Iterate(func(uint, byte) bool { seen++; return seen < 3 }) {
		t.Fatal("early-stopped walk reported completion")
	}
	if seen != 3 {
		t.Fatalf("saw %d slots after stop at 3", seen)
	}
}

// TestSnapshotIterateLockedForms drives SnapshotIterate over blocks built
// through the locked mutation path — including a completely full block,
// whose final terminator is represented by the forced top bit — and checks
// the walk agrees with locked Contains.
func TestSnapshotIterateLockedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var seq atomic.Uint64
	for _, n := range []int{0, 1, 17, B8Slots} {
		var b Block8
		b.Reset()
		want := map[[2]uint16]int{}
		for i := 0; i < n; i++ {
			bucket := uint(rng.Intn(B8Buckets))
			fp := byte(rng.Intn(256))
			b.Lock()
			if !b.InsertLocked(bucket, fp) {
				t.Fatalf("locked insert %d failed below capacity", i)
			}
			b.UnlockBump(&seq)
			want[[2]uint16{uint16(bucket), uint16(fp)}]++
		}
		got := map[[2]uint16]int{}
		count := 0
		b.SnapshotIterate(&seq, func(bucket uint, fp byte) bool {
			got[[2]uint16{uint16(bucket), uint16(fp)}]++
			count++
			return true
		})
		if count != n {
			t.Fatalf("n=%d: iterated %d slots", n, count)
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("n=%d: pair %v count %d, want %d", n, k, got[k], c)
			}
		}
	}

	var b16 Block16
	b16.Reset()
	for i := 0; i < B16Slots; i++ {
		b16.Lock()
		if !b16.InsertLocked(uint(i%B16Buckets), uint16(i*7)) {
			t.Fatalf("locked insert %d failed", i)
		}
		b16.UnlockBump(&seq)
	}
	count := 0
	b16.SnapshotIterate(&seq, func(uint, uint16) bool { count++; return true })
	if count != B16Slots {
		t.Fatalf("full Block16: iterated %d slots", count)
	}
}

// TestSnapshotIterateUnderWriters checks that SnapshotIterate taken while a
// writer hammers the block always yields an internally consistent state:
// the walk's slot count must match some occupancy the block actually had
// (here: between 0 and B8Slots with every yielded pair one the writer
// inserted).
func TestSnapshotIterateUnderWriters(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			bucket, fp := uint(i%B8Buckets), byte(i)
			b.Lock()
			if !b.InsertLocked(bucket, fp) {
				b.RemoveLocked(bucket, fp)
			}
			b.UnlockBump(&seq)
			i++
		}
	}()
	for i := 0; i < 2000; i++ {
		n := 0
		b.SnapshotIterate(&seq, func(bucket uint, fp byte) bool {
			if bucket >= B8Buckets {
				t.Errorf("bucket %d out of range", bucket)
				return false
			}
			n++
			return true
		})
		if n > B8Slots {
			t.Fatalf("iterated %d slots > capacity", n)
		}
	}
	close(stop)
	wg.Wait()
}

func TestProbeOptimistic(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64
	b.Lock()
	b.InsertLocked(5, 0xAB)
	b.InsertLocked(5, 0xAB)
	b.InsertLocked(5, 0xCD)
	b.UnlockBump(&seq)
	bcast := uint64(0xABABABABABABABAB)
	if got := popcount(b.ProbeOptimistic(&seq, 5, bcast)); got != 2 {
		t.Fatalf("ProbeOptimistic matched %d instances, want 2", got)
	}
	if got := popcount(b.ProbeOptimistic(&seq, 6, bcast)); got != 0 {
		t.Fatalf("ProbeOptimistic matched %d in empty bucket", got)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
