//go:build !amd64 || purego

package minifilter

import "vqf/internal/swar"

// On builds without the fused assembly probes, probe8/probe16 are the
// generic kernels; see kernel_amd64.go for the assembly dispatch.

func probe8(lo, hi uint64, fps *[swar.Words8]uint64, bucket uint, bcast uint64) uint64 {
	return probe8Generic(lo, hi, fps, bucket, bcast)
}

func probe16(meta uint64, fps *[swar.Words16]uint64, bucket uint, bcast uint64) uint64 {
	return probe16Generic(meta, fps, bucket, bcast)
}
