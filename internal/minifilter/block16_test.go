package minifilter

import (
	"math/bits"
	"math/rand"
	"testing"
	"unsafe"
)

func TestBlock16IsOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(Block16{}); sz != 64 {
		t.Fatalf("Block16 is %d bytes, want 64", sz)
	}
}

func TestBlock16EmptyState(t *testing.T) {
	var b Block16
	b.Reset()
	if got := b.Occupancy(); got != 0 {
		t.Fatalf("empty occupancy = %d", got)
	}
	if n := bits.OnesCount64(b.Meta); n != B16Buckets {
		t.Fatalf("fresh metadata has %d ones, want %d", n, B16Buckets)
	}
	for bucket := uint(0); bucket < B16Buckets; bucket++ {
		if b.Contains(bucket, 0) {
			t.Fatalf("Contains(%d, 0) true in fresh block", bucket)
		}
	}
}

func TestBlock16InsertContainsRemove(t *testing.T) {
	var b Block16
	b.Reset()
	for _, bucket := range []uint{0, 1, 17, 34, 35} {
		fp := uint16(bucket*1000 + 7)
		if !b.Insert(bucket, fp) {
			t.Fatalf("Insert(%d, %d) failed", bucket, fp)
		}
		if !b.Contains(bucket, fp) {
			t.Fatalf("Contains(%d, %d) false after insert", bucket, fp)
		}
		if b.Contains(bucket, fp+1) {
			t.Fatalf("false positive within bucket %d", bucket)
		}
	}
	if got := b.Occupancy(); got != 5 {
		t.Fatalf("occupancy = %d, want 5", got)
	}
	for _, bucket := range []uint{0, 1, 17, 34, 35} {
		fp := uint16(bucket*1000 + 7)
		if !b.Remove(bucket, fp) {
			t.Fatalf("Remove(%d, %d) failed", bucket, fp)
		}
	}
	if got := b.Occupancy(); got != 0 {
		t.Fatalf("occupancy after removes = %d", got)
	}
}

func TestBlock16FillToCapacity(t *testing.T) {
	var b Block16
	b.Reset()
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		bucket uint
		fp     uint16
	}
	var entries []entry
	for i := 0; i < B16Slots; i++ {
		e := entry{uint(rng.Intn(B16Buckets)), uint16(rng.Intn(1 << 16))}
		if !b.Insert(e.bucket, e.fp) {
			t.Fatalf("insert %d failed before capacity", i)
		}
		entries = append(entries, e)
	}
	if !b.Full() {
		t.Fatal("block not full after 28 inserts")
	}
	if b.Insert(0, 1) {
		t.Fatal("insert into full block succeeded")
	}
	for _, e := range entries {
		if !b.Contains(e.bucket, e.fp) {
			t.Fatalf("entry (%d,%d) lost", e.bucket, e.fp)
		}
	}
	if b.Meta>>63 != 1 {
		t.Fatal("top metadata bit not set in full block")
	}
}

func TestBlock16ModelBased(t *testing.T) {
	var b Block16
	b.Reset()
	model := map[modelKey]int{}
	occ := 0
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 30000; step++ {
		bucket := uint(rng.Intn(B16Buckets))
		fp := uint16(rng.Intn(6))
		k := modelKey{bucket, fp}
		switch rng.Intn(3) {
		case 0:
			ok := b.Insert(bucket, fp)
			if ok != (occ < B16Slots) {
				t.Fatalf("step %d: insert ok=%v occ=%d", step, ok, occ)
			}
			if ok {
				model[k]++
				occ++
			}
		case 1:
			ok := b.Remove(bucket, fp)
			if ok != (model[k] > 0) {
				t.Fatalf("step %d: remove ok=%v model=%d", step, ok, model[k])
			}
			if ok {
				model[k]--
				if model[k] == 0 {
					delete(model, k)
				}
				occ--
			}
		case 2:
			if got, want := b.Contains(bucket, fp), model[k] > 0; got != want {
				t.Fatalf("step %d: contains=%v want %v", step, got, want)
			}
		}
		if step%997 == 0 {
			if got := b.Occupancy(); got != uint(occ) {
				t.Fatalf("step %d: occupancy=%d model=%d", step, got, occ)
			}
			if ones := bits.OnesCount64(b.Meta); ones != B16Buckets {
				t.Fatalf("step %d: %d ones in metadata", step, ones)
			}
		}
	}
	for k := range model {
		if !b.Contains(k.bucket, k.fp) {
			t.Fatalf("model entry (%d,%d) missing", k.bucket, k.fp)
		}
	}
}

func TestBlock16BucketCountsMatchModel(t *testing.T) {
	var b Block16
	b.Reset()
	counts := map[uint]uint{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < B16Slots; i++ {
		bucket := uint(rng.Intn(B16Buckets))
		if !b.Insert(bucket, uint16(rng.Intn(1<<16))) {
			t.Fatal("insert failed")
		}
		counts[bucket]++
	}
	for bucket := uint(0); bucket < B16Buckets; bucket++ {
		if got := b.BucketCount(bucket); got != counts[bucket] {
			t.Fatalf("bucket %d count = %d, want %d", bucket, got, counts[bucket])
		}
	}
}

func BenchmarkBlock16Insert(b *testing.B) {
	var blk Block16
	blk.Reset()
	rng := rand.New(rand.NewSource(4))
	buckets := make([]uint, 1024)
	fps := make([]uint16, 1024)
	for i := range buckets {
		buckets[i] = uint(rng.Intn(B16Buckets))
		fps[i] = uint16(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 1023
		if !blk.Insert(buckets[j], fps[j]) {
			blk.Reset()
		}
	}
}
