//go:build amd64 && !purego

package minifilter

import "vqf/internal/swar"

// Fused assembly probes. The generic probe is two dependent steps — a SWAR
// metadata select (bucketRange128/bucketRange64: byte-wise popcount prefix
// plus a table lookup) feeding a lane match — and the select dominates the
// critical path. With BMI2 the select collapses to two instructions
// (PDEP to isolate the bucket's terminator, TZCNT for its position), so the
// whole probe — select, slot-range arithmetic, SSE2 lane compare, range
// mask — fits in one assembly routine with no function-call boundary in the
// middle. The CPUID gate lives in internal/swar next to the kernel switch:
// one SetAsmKernels toggle moves the match kernels and the fused probes
// together, which is what the asm-vs-generic benchmark and parity gates
// flip.

func probe8(lo, hi uint64, fps *[swar.Words8]uint64, bucket uint, bcast uint64) uint64 {
	if swar.FastProbeEnabled() {
		return fusedProbe8Asm(lo, hi, fps, bucket, bcast)
	}
	return probe8Generic(lo, hi, fps, bucket, bcast)
}

func probe16(meta uint64, fps *[swar.Words16]uint64, bucket uint, bcast uint64) uint64 {
	if swar.FastProbeEnabled() {
		return fusedProbe16Asm(meta, fps, bucket, bcast)
	}
	return probe16Generic(meta, fps, bucket, bcast)
}

// fusedProbe8Asm is probe8Generic in one assembly routine: PDEP/TZCNT
// metadata select over the 128-bit terminator words, then the SSE2 lane
// match restricted to the bucket's slot range. Requires swar.HasFastSelect
// and *valid* block metadata (80 terminators among the 128 bits, bucket <
// 80); both are guaranteed by the callers, which probe only locked blocks or
// validated optimistic snapshots.
//
//go:noescape
func fusedProbe8Asm(lo, hi uint64, fps *[swar.Words8]uint64, bucket uint, bcast uint64) uint64

// fusedProbe16Asm is the 16-bit-fingerprint analog of fusedProbe8Asm
// (36 terminators in one 64-bit word, bucket < 36).
//
//go:noescape
func fusedProbe16Asm(meta uint64, fps *[swar.Words16]uint64, bucket uint, bcast uint64) uint64
