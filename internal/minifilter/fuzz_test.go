package minifilter

import "testing"

// FuzzBlock8OpSequence interprets fuzz input as an operation stream against
// one block and checks it against an exact model: byte triples of
// (op, bucket, fingerprint).
func FuzzBlock8OpSequence(f *testing.F) {
	f.Add([]byte{0, 10, 42, 0, 10, 42, 1, 10, 42, 2, 10, 42})
	f.Add([]byte{0, 79, 255, 2, 79, 255, 1, 79, 255})
	f.Add(make([]byte, 300)) // many op-0 on bucket 0
	f.Fuzz(func(t *testing.T, data []byte) {
		var b Block8
		b.Reset()
		model := map[modelKey]int{}
		occ := 0
		for i := 0; i+2 < len(data); i += 3 {
			bucket := uint(data[i+1]) % B8Buckets
			fp := data[i+2]
			k := modelKey{bucket, uint16(fp)}
			switch data[i] % 3 {
			case 0:
				ok := b.Insert(bucket, fp)
				if ok != (occ < B8Slots) {
					t.Fatalf("insert ok=%v at occ=%d", ok, occ)
				}
				if ok {
					model[k]++
					occ++
				}
			case 1:
				ok := b.Remove(bucket, fp)
				if ok != (model[k] > 0) {
					t.Fatalf("remove ok=%v model=%d", ok, model[k])
				}
				if ok {
					model[k]--
					occ--
				}
			case 2:
				if got, want := b.Contains(bucket, fp), model[k] > 0; got != want {
					t.Fatalf("contains=%v want %v", got, want)
				}
			}
		}
		if b.Occupancy() != uint(occ) {
			t.Fatalf("occupancy %d, model %d", b.Occupancy(), occ)
		}
	})
}

// FuzzBlock16OpSequence is the 16-bit analog; fingerprints take two bytes.
func FuzzBlock16OpSequence(f *testing.F) {
	f.Add([]byte{0, 5, 1, 2, 2, 5, 1, 2, 1, 5, 1, 2})
	f.Add([]byte{0, 35, 255, 255, 1, 35, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b Block16
		b.Reset()
		model := map[modelKey]int{}
		occ := 0
		for i := 0; i+3 < len(data); i += 4 {
			bucket := uint(data[i+1]) % B16Buckets
			fp := uint16(data[i+2]) | uint16(data[i+3])<<8
			k := modelKey{bucket, fp}
			switch data[i] % 3 {
			case 0:
				ok := b.Insert(bucket, fp)
				if ok != (occ < B16Slots) {
					t.Fatalf("insert ok=%v at occ=%d", ok, occ)
				}
				if ok {
					model[k]++
					occ++
				}
			case 1:
				ok := b.Remove(bucket, fp)
				if ok != (model[k] > 0) {
					t.Fatalf("remove ok=%v model=%d", ok, model[k])
				}
				if ok {
					model[k]--
					occ--
				}
			case 2:
				if got, want := b.Contains(bucket, fp), model[k] > 0; got != want {
					t.Fatalf("contains=%v want %v", got, want)
				}
			}
		}
	})
}
