package minifilter

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBlock8OptimisticEquivalence checks that, absent concurrent writers,
// the optimistic lookup agrees with the locked one across a random op mix.
func TestBlock8OptimisticEquivalence(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B8Buckets))
		fp := byte(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			b.Lock()
			if b.InsertLocked(bucket, fp) {
				b.UnlockBump(&seq)
			} else {
				b.Unlock()
			}
		case 1:
			b.Lock()
			if b.RemoveLocked(bucket, fp) {
				b.UnlockBump(&seq)
			} else {
				b.Unlock()
			}
		default:
			opt := b.ContainsOptimistic(&seq, bucket, fp)
			b.Lock()
			locked := b.ContainsLocked(bucket, fp)
			b.Unlock()
			if opt != locked {
				t.Fatalf("step %d: optimistic=%v locked=%v", step, opt, locked)
			}
		}
		if occ, ok := b.OccupancyOptimistic(&seq); !ok || occ != b.OccupancyLocked() {
			t.Fatalf("step %d: occupancy opt=(%d,%v) locked=%d",
				step, occ, ok, b.OccupancyLocked())
		}
	}
}

func TestBlock16OptimisticEquivalence(t *testing.T) {
	var b Block16
	b.Reset()
	var seq atomic.Uint64
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 20000; step++ {
		bucket := uint(rng.Intn(B16Buckets))
		fp := uint16(rng.Intn(16))
		switch rng.Intn(3) {
		case 0:
			b.Lock()
			if b.InsertLocked(bucket, fp) {
				b.UnlockBump(&seq)
			} else {
				b.Unlock()
			}
		case 1:
			b.Lock()
			if b.RemoveLocked(bucket, fp) {
				b.UnlockBump(&seq)
			} else {
				b.Unlock()
			}
		default:
			opt := b.ContainsOptimistic(&seq, bucket, fp)
			b.Lock()
			locked := b.ContainsLocked(bucket, fp)
			b.Unlock()
			if opt != locked {
				t.Fatalf("step %d: optimistic=%v locked=%v", step, opt, locked)
			}
		}
		if occ, ok := b.OccupancyOptimistic(&seq); !ok || occ != b.OccupancyLocked() {
			t.Fatalf("step %d: occupancy diverged", step)
		}
	}
}

// TestBlock8SnapshotABADetected is the regression test for the ABA hazard:
// a remove-then-insert on the same bucket restores bit-identical metadata
// words while changing a fingerprint byte, so a reader that revalidated the
// metadata alone would accept a snapshot whose fingerprint copy is torn.
// The explicit version bump must invalidate the snapshot.
func TestBlock8SnapshotABADetected(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64
	const bucket, fpOld, fpNew = 5, 0xAA, 0xBB
	b.Lock()
	b.InsertLocked(bucket, fpOld)
	b.UnlockBump(&seq)

	// Reader copies the block...
	var s snap8
	if !b.snapRead(&seq, &s) {
		t.Fatal("snapRead failed on quiescent block")
	}
	// ...then a writer slips in a remove-then-insert before validation.
	loBefore, hiBefore := b.MetaLo, atomic.LoadUint64(&b.MetaHi)
	b.Lock()
	if !b.RemoveLocked(bucket, fpOld) {
		t.Fatal("remove failed")
	}
	if !b.InsertLocked(bucket, fpNew) {
		t.Fatal("insert failed")
	}
	b.UnlockBump(&seq)

	// Preconditions of the hazard: metadata words restored exactly,
	// fingerprint bytes changed.
	if b.MetaLo != loBefore || atomic.LoadUint64(&b.MetaHi) != hiBefore {
		t.Fatalf("test setup: metadata words changed; not an ABA scenario")
	}
	if b.Fps == s.fps {
		t.Fatalf("test setup: fingerprints unchanged; not an ABA scenario")
	}
	if b.snapValidate(&seq, &s) {
		t.Fatal("ABA write was not detected: stale snapshot validated")
	}
}

// TestBlock16SnapshotABADetected is the 16-bit analog.
func TestBlock16SnapshotABADetected(t *testing.T) {
	var b Block16
	b.Reset()
	var seq atomic.Uint64
	const bucket = 7
	b.Lock()
	b.InsertLocked(bucket, 0x1111)
	b.UnlockBump(&seq)

	var s snap16
	if !b.snapRead(&seq, &s) {
		t.Fatal("snapRead failed on quiescent block")
	}
	metaBefore := atomic.LoadUint64(&b.Meta)
	b.Lock()
	if !b.RemoveLocked(bucket, 0x1111) {
		t.Fatal("remove failed")
	}
	if !b.InsertLocked(bucket, 0x2222) {
		t.Fatal("insert failed")
	}
	b.UnlockBump(&seq)

	if atomic.LoadUint64(&b.Meta) != metaBefore {
		t.Fatalf("test setup: metadata word changed; not an ABA scenario")
	}
	if b.Fps == s.fps {
		t.Fatalf("test setup: fingerprints unchanged; not an ABA scenario")
	}
	if b.snapValidate(&seq, &s) {
		t.Fatal("ABA write was not detected: stale snapshot validated")
	}
}

// TestBlock8SnapshotValidatesWhenQuiescent is the positive control: with no
// intervening write the snapshot must validate and reflect the block.
func TestBlock8SnapshotValidatesWhenQuiescent(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64
	b.Lock()
	b.InsertLocked(3, 0x42)
	b.UnlockBump(&seq)
	var s snap8
	if !b.snapRead(&seq, &s) || !b.snapValidate(&seq, &s) {
		t.Fatal("snapshot of quiescent block failed to validate")
	}
	if s.lo != b.MetaLo || s.hi != atomic.LoadUint64(&b.MetaHi)|lockBit {
		t.Fatal("snapshot metadata differs from block")
	}
	if s.fps != b.Fps {
		t.Fatal("snapshot fingerprints differ from block")
	}
	// A snapshot taken while the lock is held must refuse to read.
	b.Lock()
	if b.snapRead(&seq, &s) {
		t.Fatal("snapRead succeeded under a held lock")
	}
	b.Unlock()
}

// TestBlock8OptimisticConcurrentStress hammers one block with locked
// writers and lock-free optimistic readers. Run with -race: it exercises
// the contract that every word an optimistic reader touches is published
// atomically. Keys inserted once and never removed must always be found.
func TestBlock8OptimisticConcurrentStress(t *testing.T) {
	var b Block8
	b.Reset()
	var seq atomic.Uint64

	// Pin a few fingerprints that are never removed.
	type pin struct {
		bucket uint
		fp     byte
	}
	pins := []pin{{0, 1}, {17, 2}, {42, 3}, {B8Buckets - 1, 4}}
	b.Lock()
	for _, p := range pins {
		if !b.InsertLocked(p.bucket, p.fp) {
			t.Fatal("pin insert failed")
		}
	}
	b.UnlockBump(&seq)

	const writers, readers = 2, 4
	const ops = 4000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []pin
			for i := 0; i < ops; i++ {
				if len(mine) > 0 && (rng.Intn(2) == 0 || len(mine) > 8) {
					k := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					b.Lock()
					if !b.RemoveLocked(k.bucket, k.fp) {
						t.Error("own churn key missing")
					}
					b.UnlockBump(&seq)
					continue
				}
				// Churn fingerprints live in 100..255 so they never collide
				// with the pinned ones.
				k := pin{uint(rng.Intn(B8Buckets)), byte(100 + rng.Intn(156))}
				b.Lock()
				if b.InsertLocked(k.bucket, k.fp) {
					b.UnlockBump(&seq)
					mine = append(mine, k)
				} else {
					b.Unlock()
				}
			}
			for _, k := range mine {
				b.Lock()
				if !b.RemoveLocked(k.bucket, k.fp) {
					t.Error("own churn key missing at drain")
				}
				b.UnlockBump(&seq)
			}
		}(int64(w + 7))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				p := pins[rng.Intn(len(pins))]
				if !b.ContainsOptimistic(&seq, p.bucket, p.fp) {
					t.Error("false negative on pinned key")
					return
				}
				// Also exercise misses and the occupancy probe.
				b.ContainsOptimistic(&seq, uint(rng.Intn(B8Buckets)), byte(5+rng.Intn(90)))
				b.OccupancyOptimistic(&seq)
			}
		}(int64(r + 70))
	}
	wg.Wait()
	for _, p := range pins {
		if !b.ContainsOptimistic(&seq, p.bucket, p.fp) {
			t.Fatal("pinned key missing after stress")
		}
	}
}
