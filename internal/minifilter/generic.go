package minifilter

import "vqf/internal/swar"

// Loop-based ("generic") variants of every block operation. These are the
// ablation baseline for the paper's §7.7 AVX-512-vs-AVX2 experiment: the
// data-structure layout is identical (word-native fingerprint lanes,
// addressed through the scalar lane accessors), but select, compare, and
// shift run as plain scalar loops instead of broadword/SWAR operations. The
// filter types expose an option to route all block operations through these.

// selectLoop128 is the naive select over the 128-bit metadata word.
func selectLoop128(lo, hi uint64, k uint) uint {
	for i := uint(0); i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = lo >> i & 1
		} else {
			bit = hi >> (i - 64) & 1
		}
		if bit == 1 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return 128
}

func selectLoop64(x uint64, k uint) uint {
	for i := uint(0); i < 64; i++ {
		if x>>i&1 == 1 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return 64
}

// OccupancyGeneric is Occupancy computed with the naive select loop.
func (b *Block8) OccupancyGeneric() uint {
	return selectLoop128(b.MetaLo, b.MetaHi, B8Buckets-1) - (B8Buckets - 1)
}

func (b *Block8) bucketRangeGeneric(bucket uint) (start, end uint) {
	if bucket == 0 {
		return 0, selectLoop128(b.MetaLo, b.MetaHi, 0)
	}
	start = selectLoop128(b.MetaLo, b.MetaHi, bucket-1) - bucket + 1
	end = selectLoop128(b.MetaLo, b.MetaHi, bucket) - bucket
	return
}

// ContainsGeneric is Contains with a scalar compare loop.
func (b *Block8) ContainsGeneric(bucket uint, fp byte) bool {
	start, end := b.bucketRangeGeneric(bucket)
	for i := start; i < end; i++ {
		if swar.Lane8(&b.Fps, int(i)) == fp {
			return true
		}
	}
	return false
}

// InsertGeneric is Insert with scalar metadata and fingerprint shifts.
func (b *Block8) InsertGeneric(bucket uint, fp byte) bool {
	occ := b.OccupancyGeneric()
	if occ == B8Slots {
		return false
	}
	m := selectLoop128(b.MetaLo, b.MetaHi, bucket)
	z := m - bucket
	for i := occ; i > z; i-- {
		swar.SetLane8(&b.Fps, int(i), swar.Lane8(&b.Fps, int(i-1)))
	}
	swar.SetLane8(&b.Fps, int(z), fp)
	// Shift metadata bits >= m up by one, inserting a 0 at m, bit by bit.
	for i := uint(B8Meta - 1); i > m; i-- {
		setBit128(b, i, getBit128(b, i-1))
	}
	setBit128(b, m, 0)
	return true
}

// RemoveGeneric is Remove with scalar loops.
func (b *Block8) RemoveGeneric(bucket uint, fp byte) bool {
	start, end := b.bucketRangeGeneric(bucket)
	l := -1
	for i := start; i < end; i++ {
		if swar.Lane8(&b.Fps, int(i)) == fp {
			l = int(i)
			break
		}
	}
	if l < 0 {
		return false
	}
	occ := b.OccupancyGeneric()
	m := uint(l) + bucket
	for i := m; i < B8Meta-1; i++ {
		setBit128(b, i, getBit128(b, i+1))
	}
	setBit128(b, B8Meta-1, 0)
	for i := uint(l); i+1 < occ; i++ {
		swar.SetLane8(&b.Fps, int(i), swar.Lane8(&b.Fps, int(i+1)))
	}
	swar.SetLane8(&b.Fps, int(occ-1), 0)
	return true
}

func getBit128(b *Block8, i uint) uint64 {
	if i < 64 {
		return b.MetaLo >> i & 1
	}
	return b.MetaHi >> (i - 64) & 1
}

func setBit128(b *Block8, i uint, v uint64) {
	if i < 64 {
		b.MetaLo = b.MetaLo&^(1<<i) | v<<i
	} else {
		b.MetaHi = b.MetaHi&^(1<<(i-64)) | v<<(i-64)
	}
}

// OccupancyGeneric is Occupancy computed with the naive select loop.
func (b *Block16) OccupancyGeneric() uint {
	return selectLoop64(b.Meta, B16Buckets-1) - (B16Buckets - 1)
}

func (b *Block16) bucketRangeGeneric(bucket uint) (start, end uint) {
	if bucket == 0 {
		return 0, selectLoop64(b.Meta, 0)
	}
	start = selectLoop64(b.Meta, bucket-1) - bucket + 1
	end = selectLoop64(b.Meta, bucket) - bucket
	return
}

// ContainsGeneric is Contains with a scalar compare loop.
func (b *Block16) ContainsGeneric(bucket uint, fp uint16) bool {
	start, end := b.bucketRangeGeneric(bucket)
	for i := start; i < end; i++ {
		if swar.Lane16(&b.Fps, int(i)) == fp {
			return true
		}
	}
	return false
}

// InsertGeneric is Insert with scalar loops.
func (b *Block16) InsertGeneric(bucket uint, fp uint16) bool {
	occ := b.OccupancyGeneric()
	if occ == B16Slots {
		return false
	}
	m := selectLoop64(b.Meta, bucket)
	z := m - bucket
	for i := occ; i > z; i-- {
		swar.SetLane16(&b.Fps, int(i), swar.Lane16(&b.Fps, int(i-1)))
	}
	swar.SetLane16(&b.Fps, int(z), fp)
	for i := uint(B16Meta - 1); i > m; i-- {
		b.Meta = b.Meta&^(1<<i) | (b.Meta >> (i - 1) & 1 << i)
	}
	b.Meta &^= 1 << m
	return true
}

// RemoveGeneric is Remove with scalar loops.
func (b *Block16) RemoveGeneric(bucket uint, fp uint16) bool {
	start, end := b.bucketRangeGeneric(bucket)
	l := -1
	for i := start; i < end; i++ {
		if swar.Lane16(&b.Fps, int(i)) == fp {
			l = int(i)
			break
		}
	}
	if l < 0 {
		return false
	}
	occ := b.OccupancyGeneric()
	m := uint(l) + bucket
	for i := m; i < B16Meta-1; i++ {
		b.Meta = b.Meta&^(1<<i) | (b.Meta >> (i + 1) & 1 << i)
	}
	b.Meta &^= 1 << (B16Meta - 1)
	for i := uint(l); i+1 < occ; i++ {
		swar.SetLane16(&b.Fps, int(i), swar.Lane16(&b.Fps, int(i+1)))
	}
	swar.SetLane16(&b.Fps, int(occ-1), 0)
	return true
}
