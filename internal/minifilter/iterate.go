package minifilter

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"vqf/internal/swar"
)

// Slot iteration. A block's metadata interleaves one terminator bit per
// bucket with one zero bit per stored fingerprint, in bucket order, so the
// occupied slots can be enumerated by a single pass over the metadata: a
// zero bit at position p is an occupied slot exactly when the number of one
// bits below p is smaller than the bucket count (zeros above the final
// terminator are dead space, not slots), its bucket index is that one-bit
// count, and its slot index is the running zero count. The rule holds
// uniformly for the plain and locked metadata conventions as long as the
// locked words are read in their logical form (top bit forced to 1): when
// the block is not full the forced bit lies above the final terminator and
// is never reached, and when it is full the forced bit IS the final
// terminator. Iteration is a maintenance-path primitive (compaction,
// serialization audits, the oracle's rebuild property), not a hot-path one,
// so it favours clarity over peak speed — though the zero-skipping loop
// still visits only occupied slots, not all 128 bits.

// IterSlots128 enumerates the occupied slots of a Block8 metadata image in
// slot order, yielding each slot's bucket index and fingerprint. It returns
// false if yield stopped the walk early. The metadata must be in logical
// form: plain-mode words as stored, locked-mode words with the top bit
// forced to 1.
func IterSlots128(lo, hi uint64, fps *[swar.Words8]uint64, yield func(bucket uint, fp byte) bool) bool {
	slot := 0
	// Low word: ones below a position are counted within lo alone.
	for inv := ^lo; inv != 0; inv &= inv - 1 {
		p := uint(bits.TrailingZeros64(inv))
		bucket := uint(bits.OnesCount64(lo & (uint64(1)<<p - 1)))
		if bucket >= B8Buckets || slot >= B8Slots {
			return true
		}
		if !yield(bucket, swar.Lane8(fps, slot)) {
			return false
		}
		slot++
	}
	onesLo := uint(bits.OnesCount64(lo))
	for inv := ^hi; inv != 0; inv &= inv - 1 {
		p := uint(bits.TrailingZeros64(inv))
		bucket := onesLo + uint(bits.OnesCount64(hi&(uint64(1)<<p-1)))
		if bucket >= B8Buckets || slot >= B8Slots {
			return true
		}
		if !yield(bucket, swar.Lane8(fps, slot)) {
			return false
		}
		slot++
	}
	return true
}

// IterSlots64 enumerates the occupied slots of a Block16 metadata image in
// slot order; see IterSlots128.
func IterSlots64(meta uint64, fps *[swar.Words16]uint64, yield func(bucket uint, fp uint16) bool) bool {
	slot := 0
	for inv := ^meta; inv != 0; inv &= inv - 1 {
		p := uint(bits.TrailingZeros64(inv))
		bucket := uint(bits.OnesCount64(meta & (uint64(1)<<p - 1)))
		if bucket >= B16Buckets || slot >= B16Slots {
			return true
		}
		if !yield(bucket, swar.Lane16(fps, slot)) {
			return false
		}
		slot++
	}
	return true
}

// Iterate walks the block's occupied slots in slot order under the plain
// (single-threaded) metadata convention, yielding (bucket, fingerprint)
// pairs. It returns false if yield stopped the walk early.
func (b *Block8) Iterate(yield func(bucket uint, fp byte) bool) bool {
	return IterSlots128(b.MetaLo, b.MetaHi, &b.Fps, yield)
}

// Iterate walks the block's occupied slots under the plain metadata
// convention; see Block8.Iterate.
func (b *Block16) Iterate(yield func(bucket uint, fp uint16) bool) bool {
	return IterSlots64(b.Meta, &b.Fps, yield)
}

// SnapshotIterate walks the occupied slots of a locked-mode block from a
// consistent point-in-time copy, yielding (bucket, fingerprint) pairs. The
// copy is taken with the optimistic seqlock protocol (see optimistic.go)
// and, after repeated conflicts, under the block lock — either way yield
// always observes one internally consistent block state, never a torn mix,
// and runs on the private copy so it may take arbitrarily long without
// blocking writers. Blocks mutated after the copy are not re-read; callers
// that need cross-block agreement with concurrent writers must provide it
// externally (compaction quiesces inserts and logs removals). It returns
// false if yield stopped the walk early.
func (b *Block8) SnapshotIterate(seq *atomic.Uint64, yield func(bucket uint, fp byte) bool) bool {
	var s snap8
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return IterSlots128(s.lo, s.hi, &s.fps, yield)
		}
		runtime.Gosched()
	}
	b.Lock()
	s.lo, s.hi = b.metaLocked()
	s.fps = b.Fps // plain read is safe under the lock
	b.Unlock()
	return IterSlots128(s.lo, s.hi, &s.fps, yield)
}

// SnapshotIterate walks a locked-mode block from a consistent copy; see
// Block8.SnapshotIterate.
func (b *Block16) SnapshotIterate(seq *atomic.Uint64, yield func(bucket uint, fp uint16) bool) bool {
	var s snap16
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return IterSlots64(s.meta, &s.fps, yield)
		}
		runtime.Gosched()
	}
	b.Lock()
	s.meta = b.metaLocked()
	s.fps = b.Fps
	b.Unlock()
	return IterSlots64(s.meta, &s.fps, yield)
}

// ProbeOptimistic returns the slot match mask of the pre-broadcast
// fingerprint within bucket from a validated lock-free snapshot of a
// locked-mode block, falling back to the block lock after repeated
// conflicts. It is the counting analogue of ContainsOptimisticCountedB
// (which only needs mask != 0): compaction's removal reconciliation counts
// matching instances, so it needs the full mask.
func (b *Block8) ProbeOptimistic(seq *atomic.Uint64, bucket uint, bcast uint64) uint64 {
	var s snap8
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return probe8(s.lo, s.hi, &s.fps, bucket, bcast)
		}
		runtime.Gosched()
	}
	b.Lock()
	lo, hi := b.metaLocked()
	mask := probe8(lo, hi, &b.Fps, bucket, bcast)
	b.Unlock()
	return mask
}

// ProbeOptimistic returns the slot match mask from a validated lock-free
// snapshot; see Block8.ProbeOptimistic.
func (b *Block16) ProbeOptimistic(seq *atomic.Uint64, bucket uint, bcast uint64) uint64 {
	var s snap16
	for i := 0; i < optRetries; i++ {
		if b.snapRead(seq, &s) && b.snapValidate(seq, &s) {
			return probe16(s.meta, &s.fps, bucket, bcast)
		}
		runtime.Gosched()
	}
	b.Lock()
	mask := probe16(b.metaLocked(), &b.Fps, bucket, bcast)
	b.Unlock()
	return mask
}
