//go:build amd64 && !purego

#include "textflag.h"

// Fused probe kernels: metadata select + slot-range arithmetic + lane match
// in one routine. The select uses the BMI2 trick
//
//	position of k-th set bit of m  =  TZCNT(PDEP(1 << k, m))
//
// which replaces the generic SWAR popcount-prefix select. The bucket's slot
// range [start, end) then falls out of two terminator positions, and the
// SSE2 compare + range mask is identical to the swar match kernels. Callers
// guarantee valid block metadata (see kernel_amd64.go), which bounds every
// shift count below 64:
//
//   - a terminator always follows terminator bucket-1 (bucket is in range),
//     so the "rest" mask TZCNT operates on is nonzero wherever the code
//     relies on it;
//   - "bits strictly above p" is built as (-1 << p) << 1 — two shifts each
//     < 64 — rather than -1 << (p+1), which would wrap at p = 63.
//
// Requires swar.HasFastSelect (POPCNT + BMI1 + BMI2); gated by the caller.

// func fusedProbe8Asm(lo, hi uint64, fps *[6]uint64, bucket uint, bcast uint64) uint64
TEXT ·fusedProbe8Asm(SB), NOSPLIT, $0-48
	MOVQ    lo+0(FP), R8
	MOVQ    hi+8(FP), R9
	MOVQ    bucket+24(FP), BX
	XORQ    R10, R10            // start = 0 (bucket-0 case)
	TESTQ   BX, BX
	JEQ     firstBucket8
	LEAQ    -1(BX), DX          // k = bucket-1
	POPCNTQ R8, R12             // terminators in the low word
	CMPQ    DX, R12
	JCC     selectHi8           // k >= popcount(lo): terminator k is in hi

	// p = TZCNT(PDEP(1<<k, lo)), the k-th terminator's bit position.
	MOVQ    DX, CX
	MOVQ    $1, R13
	SHLQ    CX, R13
	PDEPQ   R8, R13, R13
	TZCNTQ  R13, R13            // p (0..63)
	MOVQ    $-1, R12
	MOVQ    R13, CX
	SHLQ    CX, R12
	SHLQ    $1, R12             // bits strictly above p
	ANDQ    R8, R12             // rest of lo
	JNE     nextInLo8
	TZCNTQ  R9, R11             // next terminator is in hi
	ADDQ    $64, R11            // q = 64 + TZCNT(hi)
	JMP     haveRange8

nextInLo8:
	TZCNTQ  R12, R11            // q
	JMP     haveRange8

selectHi8:
	SUBQ    R12, DX             // k' = k - popcount(lo)
	MOVQ    DX, CX
	MOVQ    $1, R13
	SHLQ    CX, R13
	PDEPQ   R9, R13, R13
	TZCNTQ  R13, R13            // p - 64
	MOVQ    $-1, R12
	MOVQ    R13, CX
	SHLQ    CX, R12
	SHLQ    $1, R12
	ANDQ    R9, R12             // rest of hi; nonzero (terminator bucket follows)
	TZCNTQ  R12, R11
	ADDQ    $64, R11            // q
	ADDQ    $64, R13            // p

haveRange8:
	SUBQ    BX, R11             // end = q - bucket
	SUBQ    BX, R13
	LEAQ    1(R13), R10         // start = p - bucket + 1
	JMP     match8

firstBucket8:
	TZCNTQ  R8, R11             // end = TZCNT(lo), or into hi when lo == 0
	CMPQ    R11, $64
	JNE     match8
	TZCNTQ  R9, R11
	ADDQ    $64, R11

match8:
	CMPQ    R10, R11
	JCC     empty8              // start >= end: empty bucket, skip the loads
	MOVQ    fps+16(FP), SI
	MOVQ    bcast+32(FP), AX
	MOVQ    AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU   (SI), X1
	MOVOU   16(SI), X2
	MOVOU   32(SI), X3
	PCMPEQB X0, X1
	PCMPEQB X0, X2
	PCMPEQB X0, X3
	PMOVMSKB X1, AX
	PMOVMSKB X2, BX
	PMOVMSKB X3, DX
	SHLQ    $16, BX
	SHLQ    $32, DX
	ORQ     BX, AX
	ORQ     DX, AX
	MOVQ    $-1, R9
	MOVQ    R10, CX
	SHLQ    CX, R9              // -1 << start
	ANDQ    R9, AX
	MOVQ    $1, R9
	MOVQ    R11, CX
	SHLQ    CX, R9
	DECQ    R9                  // (1 << end) - 1; end <= 48
	ANDQ    R9, AX
	MOVQ    AX, ret+40(FP)
	RET

empty8:
	MOVQ    $0, ret+40(FP)
	RET

// func fusedProbe16Asm(meta uint64, fps *[7]uint64, bucket uint, bcast uint64) uint64
TEXT ·fusedProbe16Asm(SB), NOSPLIT, $0-40
	MOVQ    meta+0(FP), R8
	MOVQ    bucket+16(FP), BX
	XORQ    R10, R10            // start = 0 (bucket-0 case)
	TESTQ   BX, BX
	JEQ     firstBucket16
	LEAQ    -1(BX), CX          // k = bucket-1
	MOVQ    $1, R12
	SHLQ    CX, R12
	PDEPQ   R8, R12, R12
	TZCNTQ  R12, R13            // p
	MOVQ    $-1, R12
	MOVQ    R13, CX
	SHLQ    CX, R12
	SHLQ    $1, R12             // bits strictly above p
	ANDQ    R8, R12             // nonzero: terminator bucket follows
	TZCNTQ  R12, R11            // q
	SUBQ    BX, R11             // end = q - bucket
	SUBQ    BX, R13
	LEAQ    1(R13), R10         // start = p - bucket + 1
	JMP     match16

firstBucket16:
	TZCNTQ  R8, R11             // end = TZCNT(meta); meta != 0 always

match16:
	CMPQ    R10, R11
	JCC     empty16             // start >= end: empty bucket, skip the loads
	MOVQ    fps+8(FP), SI
	MOVQ    bcast+24(FP), AX
	MOVQ    AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU   (SI), X1
	MOVOU   16(SI), X2
	MOVOU   32(SI), X3
	MOVQ    48(SI), X4
	PCMPEQW X0, X1
	PCMPEQW X0, X2
	PCMPEQW X0, X3
	PCMPEQW X0, X4
	PACKSSWB X2, X1
	PACKSSWB X4, X3
	PMOVMSKB X1, AX
	PMOVMSKB X3, BX
	SHLQ    $16, BX
	ORQ     BX, AX
	MOVQ    $-1, R9
	MOVQ    R10, CX
	SHLQ    CX, R9              // -1 << start
	ANDQ    R9, AX
	MOVQ    $1, R9
	MOVQ    R11, CX
	SHLQ    CX, R9
	DECQ    R9                  // (1 << end) - 1; end <= 28 strips the tail lanes
	ANDQ    R9, AX
	MOVQ    AX, ret+32(FP)
	RET

empty16:
	MOVQ    $0, ret+32(FP)
	RET
