package vqf

import (
	"bytes"
	"strconv"
	"testing"
)

func TestFilterSerializeRoundTrip(t *testing.T) {
	f := New(10000, WithSeed(77))
	for i := 0; i < 5000; i++ {
		if err := f.AddString("key-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Fatalf("count %d != %d", g.Count(), f.Count())
	}
	// The seed travels with the filter, so string keys resolve identically.
	for i := 0; i < 5000; i++ {
		if !g.ContainsString("key-" + strconv.Itoa(i)) {
			t.Fatal("false negative after round trip")
		}
	}
	if !g.RemoveString("key-0") {
		t.Fatal("remove failed after round trip")
	}
}

func TestFilter16SerializeRoundTripFacade(t *testing.T) {
	f := New(2000, WithFalsePositiveRate(1.0/65536))
	for i := 0; i < 1000; i++ {
		f.AddUint64(uint64(i))
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !g.ContainsUint64(uint64(i)) {
			t.Fatal("false negative after 16-bit round trip")
		}
	}
	if g.FalsePositiveRate() != f.FalsePositiveRate() {
		t.Error("FPR metadata lost")
	}
}

func TestConcurrentFilterSerializationUnsupported(t *testing.T) {
	f := NewConcurrent(1000)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err == nil {
		t.Error("concurrent filter serialization should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a filter at all......"))); err == nil {
		t.Error("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("Read accepted empty input")
	}
}
