package vqf

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"testing"
)

func TestFilterSerializeRoundTrip(t *testing.T) {
	f := New(10000, WithSeed(77))
	for i := 0; i < 5000; i++ {
		if err := f.AddString("key-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Fatalf("count %d != %d", g.Count(), f.Count())
	}
	// The seed travels with the filter, so string keys resolve identically.
	for i := 0; i < 5000; i++ {
		if !g.ContainsString("key-" + strconv.Itoa(i)) {
			t.Fatal("false negative after round trip")
		}
	}
	if !g.RemoveString("key-0") {
		t.Fatal("remove failed after round trip")
	}
}

func TestFilter16SerializeRoundTripFacade(t *testing.T) {
	f := New(2000, WithFalsePositiveRate(1.0/65536))
	for i := 0; i < 1000; i++ {
		f.AddUint64(uint64(i))
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !g.ContainsUint64(uint64(i)) {
			t.Fatal("false negative after 16-bit round trip")
		}
	}
	if g.FalsePositiveRate() != f.FalsePositiveRate() {
		t.Error("FPR metadata lost")
	}
}

func TestConcurrentFilterSerialization(t *testing.T) {
	// Concurrent filters serialize to the same stream as sequential ones
	// (see TestConcurrentSerializePublic for the cross-variant loads)...
	f := NewConcurrent(1000)
	f.AddUint64(42)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Errorf("concurrent filter serialization failed: %v", err)
	}
	// ...but a filter with an in-flight writer must be refused rather than
	// persisted torn; the quiescence check catches held block locks.
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.ContainsUint64(42) {
		t.Error("false negative after concurrent round trip")
	}
}

func TestMapSerializeRoundTrip(t *testing.T) {
	m := NewMap(10000, WithSeed(31))
	for i := 0; i < 5000; i++ {
		if err := m.PutString("key-"+strconv.Itoa(i), byte(i%251)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := NewMapFromReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != m.Count() {
		t.Fatalf("count %d != %d", g.Count(), m.Count())
	}
	// Fingerprint collisions can mis-attribute values (see TestMapManyKeys),
	// so the round-trip property is answer fidelity: the reloaded Map gives
	// byte-identical answers to the original on every key.
	for i := 0; i < 6000; i++ {
		key := "key-" + strconv.Itoa(i)
		wantV, wantOK := m.GetString(key)
		gotV, gotOK := g.GetString(key)
		if gotOK != wantOK || gotV != wantV {
			t.Fatalf("%s: (%d,%v) after round trip, want (%d,%v)", key, gotV, gotOK, wantV, wantOK)
		}
	}
	// The reloaded Map stays mutable.
	if err := g.PutString("new-key", 7); err != nil {
		t.Fatal(err)
	}
	if !g.DeleteHash(0) && !g.Delete([]byte("key-1")) {
		t.Fatal("delete failed after round trip")
	}
}

// TestReadRejectsForgedBlockCount patches a valid stream's block-count field
// to a huge value and checks every decoder fails fast on the length check
// instead of attempting a multi-gigabyte allocation.
func TestReadRejectsForgedBlockCount(t *testing.T) {
	forge := func(stream []byte) []byte {
		out := append([]byte(nil), stream...)
		// Envelope is 16 bytes; the core header stores nblocks at offset 8.
		binary.LittleEndian.PutUint64(out[16+8:], 1<<38) // ~16 TiB of blocks
		return out
	}
	var filterBuf, mapBuf, elasticBuf bytes.Buffer
	pf := New(100)
	pf.AddString("x")
	pf.WriteTo(&filterBuf)
	m := NewMap(100)
	m.PutString("x", 1)
	m.WriteTo(&mapBuf)
	e := NewElastic()
	e.AddString("x")
	e.WriteTo(&elasticBuf)

	if _, err := Read(bytes.NewReader(forge(filterBuf.Bytes()))); err == nil {
		t.Error("Read accepted forged block count")
	}
	if _, err := NewMapFromReader(bytes.NewReader(forge(mapBuf.Bytes()))); err == nil {
		t.Error("NewMapFromReader accepted forged block count")
	}
	// For the elastic stream the core header sits behind the cascade header
	// (56 bytes) and the first level's record (24 bytes) after the envelope.
	forged := append([]byte(nil), elasticBuf.Bytes()...)
	binary.LittleEndian.PutUint64(forged[16+56+24+8:], 1<<38)
	if _, err := ReadElastic(bytes.NewReader(forged)); err == nil {
		t.Error("ReadElastic accepted forged block count")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a filter at all......"))); err == nil {
		t.Error("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("Read accepted empty input")
	}
}
