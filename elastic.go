package vqf

import (
	"fmt"
	"io"
	"time"

	"vqf/internal/elastic"
	"vqf/internal/hashing"
	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// Elastic is an online-growing vector quotient filter: a geometric cascade
// of fixed-size VQF levels that adds a level whenever the newest one fills,
// so capacity never has to be guessed up front. Its false-positive rate
// stays under the configured budget ε no matter how many growths occur —
// per-level rates are tightened geometrically (εᵢ = ε·(1−r)·rⁱ, so Σεᵢ = ε)
// by switching deep levels to 16-bit fingerprints and, deeper still,
// over-provisioning their slots.
//
// Lookups probe levels newest-first and short-circuit on the first hit;
// with the default doubling growth more than half of all items live in the
// newest level, so the common successful lookup still touches two cache
// lines. Adds never return ErrFull. Removes search every level.
//
// Create with NewElastic (single-threaded) or NewConcurrentElastic (safe
// for any number of goroutines; lookups stay lock-free during growth).
type Elastic struct {
	impl elasticImpl
	seq  *elastic.Filter // non-nil on sequential filters; enables WriteTo
	seed uint64
	rec  *telemetry.Recorder
	ring *telemetry.Ring
}

// initObservability attaches the cascade's latency recorder and event
// ring; see Filter.initObservability.
func (e *Elastic) initObservability(rate int, concurrent bool) {
	e.rec = telemetry.NewRecorder(rate, concurrent)
	e.ring = telemetry.NewRing(telemetry.DefaultRingSize)
	if h, ok := e.impl.(interface{ SetEventRing(*telemetry.Ring) }); ok {
		h.SetEventRing(e.ring)
	}
}

// elasticImpl is the shared surface of elastic.Filter, elastic.CFilter and
// elastic.Sharded.
type elasticImpl interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Count() uint64
	Capacity() uint64
	SizeBytes() uint64
	NumLevels() int
	TargetFPR() float64
	Stats() stats.OpCounts
	Snapshot() stats.CascadeSnapshot
	CompactNow() elastic.CompactionResult
	FreezeNow() elastic.FreezeResult
}

// CompactionResult summarizes one CompactNow call: the cascade depth before
// and after, and how many source levels were rebuilt away (0 when nothing
// qualified). On sharded filters the fields are sums over all shards.
type CompactionResult = elastic.CompactionResult

// FreezeResult summarizes one FreezeNow call: the cascade depth before and
// after, how many source VQF levels were frozen or dropped, and how many
// immutable fuse levels they became. On sharded filters the fields are sums
// over all shards.
type FreezeResult = elastic.FreezeResult

// CascadeSnapshot is the structural snapshot of an Elastic filter: an
// aggregate Snapshot plus one Snapshot per level, oldest level first. See
// Elastic.CascadeSnapshot.
type CascadeSnapshot = stats.CascadeSnapshot

// elasticConfig translates the public options into the internal cascade
// config. WithInitialCapacity counts items, the internal InitialSlots is a
// slot budget; dividing by the growth threshold makes level 0 grow after
// approximately the requested item count.
func elasticConfig(opts []Option) (elastic.Config, config, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return elastic.Config{}, c, err
	}
	ec := elastic.Config{
		TargetFPR:        c.fpr,
		GrowthFactor:     c.growthFactor,
		TightenRatio:     c.tightenRatio,
		FillThreshold:    c.growThreshold,
		NoShortcut:       c.noShortcut,
		CompactMinLevels: c.compactMinLevels,
		CompactMaxLoad:   c.compactMaxLoad,
		AutoFreeze:       c.autoFreeze,
		FreezeMinAge:     c.freezeMinAge,
		FreezeMaxLoad:    c.freezeMaxLoad,
	}
	if err := ec.Validate(); err != nil {
		return ec, c, err
	}
	if c.initialCap > 0 {
		ec.InitialSlots = uint64(float64(c.initialCap) / ec.FillThreshold)
	}
	if err := ec.Validate(); err != nil {
		return ec, c, err
	}
	return ec, c, nil
}

// NewElastic returns an empty elastic filter. Unlike New it takes no item
// count: the filter starts at WithInitialCapacity (default 4096) items and
// grows online. The false-positive budget is set with
// WithFalsePositiveRate (same default as New) and holds across every
// growth. Like New it panics on invalid options.
func NewElastic(opts ...Option) *Elastic {
	ec, c, err := elasticConfig(opts)
	if err != nil {
		panic(err)
	}
	impl, err := elastic.New(ec)
	if err != nil {
		panic(err)
	}
	e := &Elastic{impl: impl, seq: impl, seed: c.seed}
	e.initObservability(c.latencyRate, false)
	return e
}

// NewConcurrentElastic returns an elastic filter safe for concurrent use by
// any number of goroutines. Growth publishes the new level list through an
// atomic pointer swap, so readers never block on it; see NewElastic for
// sizing and options.
func NewConcurrentElastic(opts ...Option) *Elastic {
	ec, c, err := elasticConfig(opts)
	if err != nil {
		panic(err)
	}
	impl, err := elastic.NewConcurrent(ec)
	if err != nil {
		panic(err)
	}
	e := &Elastic{impl: impl, seed: c.seed}
	e.initObservability(c.latencyRate, true)
	return e
}

func (e *Elastic) hash(key []byte) uint64 { return hashing.HashBytes(key, e.seed) }

// Add inserts key, growing the filter as needed. It never returns ErrFull;
// the error return exists for signature parity with Filter.Add (the
// unreachable MaxLevels backstop is its only error).
func (e *Elastic) Add(key []byte) error { return e.AddHash(e.hash(key)) }

// AddString inserts a string key.
func (e *Elastic) AddString(key string) error { return e.AddHash(hashing.HashString(key, e.seed)) }

// AddUint64 inserts a uint64 key.
func (e *Elastic) AddUint64(key uint64) error { return e.AddHash(hashing.HashUint64(key, e.seed)) }

// AddHash inserts a pre-hashed 64-bit key; see Filter.AddHash.
func (e *Elastic) AddHash(h uint64) error {
	var ok bool
	if e.rec.Sample(h) {
		start := time.Now()
		ok = e.impl.Insert(h)
		e.rec.Record(telemetry.OpInsert, h, time.Since(start))
	} else {
		ok = e.impl.Insert(h)
	}
	if !ok {
		return ErrFull
	}
	return nil
}

// Contains reports whether key may be in the filter: true for every added
// key, false with probability ≥ 1−ε for keys never added, at any size.
func (e *Elastic) Contains(key []byte) bool { return e.ContainsHash(e.hash(key)) }

// ContainsString queries a string key.
func (e *Elastic) ContainsString(key string) bool {
	return e.ContainsHash(hashing.HashString(key, e.seed))
}

// ContainsUint64 queries a uint64 key.
func (e *Elastic) ContainsUint64(key uint64) bool {
	return e.ContainsHash(hashing.HashUint64(key, e.seed))
}

// ContainsHash queries a pre-hashed 64-bit key.
func (e *Elastic) ContainsHash(h uint64) bool {
	if e.rec.Sample(h) {
		start := time.Now()
		found := e.impl.Contains(h)
		e.rec.Record(telemetry.OpLookup, h, time.Since(start))
		return found
	}
	return e.impl.Contains(h)
}

// Remove deletes one previously added instance of key, searching every
// level newest-first; see Filter.Remove for the deletion contract.
func (e *Elastic) Remove(key []byte) bool { return e.RemoveHash(e.hash(key)) }

// RemoveString removes a string key.
func (e *Elastic) RemoveString(key string) bool {
	return e.RemoveHash(hashing.HashString(key, e.seed))
}

// RemoveUint64 removes a uint64 key.
func (e *Elastic) RemoveUint64(key uint64) bool {
	return e.RemoveHash(hashing.HashUint64(key, e.seed))
}

// RemoveHash removes a pre-hashed 64-bit key.
func (e *Elastic) RemoveHash(h uint64) bool {
	if e.rec.Sample(h) {
		start := time.Now()
		ok := e.impl.Remove(h)
		e.rec.Record(telemetry.OpRemove, h, time.Since(start))
		return ok
	}
	return e.impl.Remove(h)
}

// AddHashBatch inserts a slice of pre-hashed keys and returns the number
// inserted. Unlike Filter.AddHashBatch the count is always len(hs): the
// cascade grows instead of filling, so elastic inserts never fail (the
// signature matches for batch-caller parity).
func (e *Elastic) AddHashBatch(hs []uint64) int {
	end := telemetry.Region("vqf.batch.insert")
	start := time.Now()
	n := 0
	for _, h := range hs {
		if e.impl.Insert(h) {
			n++
		}
	}
	e.rec.RecordBatch(telemetry.OpInsertBatch, 0, time.Since(start), len(hs))
	end()
	return n
}

// ContainsHashBatch reports membership for each pre-hashed key of hs, in
// input order, reusing dst when it has sufficient capacity (dst may be
// nil). The cascade resolves the batch level by level with a shrinking
// working set — keys found in the newest level never touch the older ones
// — so it is substantially faster than a loop over ContainsHash.
func (e *Elastic) ContainsHashBatch(hs []uint64, dst []bool) []bool {
	end := telemetry.Region("vqf.batch.lookup")
	start := time.Now()
	var out []bool
	if b, ok := e.impl.(interface {
		ContainsBatch(hs []uint64, dst []bool) []bool
	}); ok {
		out = b.ContainsBatch(hs, dst)
	} else {
		out = dst
		if cap(out) < len(hs) {
			out = make([]bool, len(hs))
		}
		out = out[:len(hs)]
		for i, h := range hs {
			out[i] = e.impl.Contains(h)
		}
	}
	e.rec.RecordBatch(telemetry.OpLookupBatch, 0, time.Since(start), len(hs))
	end()
	return out
}

// RemoveHashBatch removes one instance of each pre-hashed key of hs and
// returns the number found and removed.
func (e *Elastic) RemoveHashBatch(hs []uint64) int {
	end := telemetry.Region("vqf.batch.remove")
	start := time.Now()
	n := 0
	for _, h := range hs {
		if e.impl.Remove(h) {
			n++
		}
	}
	e.rec.RecordBatch(telemetry.OpRemoveBatch, 0, time.Since(start), len(hs))
	end()
	return n
}

// Count returns the number of items currently stored across all levels.
func (e *Elastic) Count() uint64 { return e.impl.Count() }

// Capacity returns the currently allocated fingerprint slots across all
// levels; it rises with each growth.
func (e *Elastic) Capacity() uint64 { return e.impl.Capacity() }

// LoadFactor returns Count divided by the current Capacity.
func (e *Elastic) LoadFactor() float64 {
	return float64(e.impl.Count()) / float64(e.impl.Capacity())
}

// SizeBytes returns the filter's current memory footprint.
func (e *Elastic) SizeBytes() uint64 { return e.impl.SizeBytes() }

// Levels returns the current number of cascade levels (1 before the first
// growth).
func (e *Elastic) Levels() int { return e.impl.NumLevels() }

// FalsePositiveRate returns the configured total false-positive budget ε,
// which upper-bounds the realized rate at every size.
func (e *Elastic) FalsePositiveRate() float64 { return e.impl.TargetFPR() }

// Stats returns operation counters summed over all levels; the per-call
// consistency contract matches Filter.Stats for the corresponding variant.
func (e *Elastic) Stats() OpStats { return e.impl.Stats() }

// Snapshot returns the cascade-wide aggregate snapshot, which makes Elastic
// a metrics Source like Filter and Map. The aggregate's occupancy section
// describes the newest (actively filling) level; use CascadeSnapshot for
// every level.
func (e *Elastic) Snapshot() Snapshot { return e.impl.Snapshot().Aggregate }

// CascadeSnapshot returns the aggregate plus per-level snapshots: level
// count, each level's occupancy, load factor and FPR estimate. On
// concurrent filters it is safe alongside live traffic.
func (e *Elastic) CascadeSnapshot() CascadeSnapshot { return e.impl.Snapshot() }

// CompactNow merges runs of old, sparse cascade levels into right-sized
// replacements, cutting the per-negative-lookup level count after
// insert/remove churn. Membership is preserved exactly (every key a merged
// level answered true for stays true) and the cascade-wide false-positive
// budget is untouched: each merged level inherits the summed budget of the
// levels it replaces. The newest (actively filling) level is never merged.
//
// On concurrent and sharded filters the call is safe alongside live
// traffic — lookups stay lock-free throughout and the merged levels are
// published with the same atomic swap growth uses; removes racing the
// compaction are reconciled so they can never resurrect in the merged
// level. Use WithAutoCompaction to trigger compaction automatically.
func (e *Elastic) CompactNow() CompactionResult { return e.impl.CompactNow() }

// FreezeNow rebuilds every qualifying run of old VQF levels into immutable
// binary-fuse levels: ~30–40% fewer bits per item and a single probe per
// lookup instead of two block scans, at the cost of update support —
// removes against a frozen level go to a tombstone ledger, and once
// tombstones cover a quarter of a level's population it thaws back into
// live form automatically. Membership is preserved exactly and the
// cascade-wide false-positive budget is untouched: each fuse level inherits
// the summed budget of the levels it replaces, and runs that cannot meet
// their budget in the fuse representation are left as they are. The newest
// (actively filling) level is never frozen.
//
// On concurrent and sharded filters the call is safe alongside live
// traffic, reusing the compaction protocol: lookups stay lock-free and
// removes racing the freeze are reconciled against the new level. Use
// WithAutoFreeze to trigger freezing automatically.
func (e *Elastic) FreezeNow() FreezeResult { return e.impl.FreezeNow() }

// WriteTo serializes the cascade (config, every level's blocks, and the
// hash seed). Only filters created with NewElastic serialize, matching
// Filter.WriteTo; it implements io.WriterTo.
func (e *Elastic) WriteTo(w io.Writer) (int64, error) {
	if e.seq == nil {
		return 0, fmt.Errorf("vqf: concurrent elastic filters do not support serialization")
	}
	n, err := writeEnvelope(w, kindElastic, e.seed)
	if err != nil {
		return n, err
	}
	m, err := e.seq.WriteTo(w)
	return n + m, err
}

// ReadElastic deserializes an elastic filter written by Elastic.WriteTo.
// The growth schedule travels with the filter, so the reloaded cascade
// keeps growing — and keeps its FPR budget — exactly as the original would
// have.
func ReadElastic(r io.Reader) (*Elastic, error) {
	seed, err := readEnvelope(r, kindElastic)
	if err != nil {
		return nil, err
	}
	impl, err := elastic.Read(r)
	if err != nil {
		return nil, err
	}
	e := &Elastic{impl: impl, seq: impl, seed: seed}
	e.initObservability(telemetry.DefaultSamplingRate, false)
	return e, nil
}
