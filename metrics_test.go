package vqf

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"vqf/internal/minifilter"
)

// TestStatsExactSequential scripts a deterministic workload against the
// sequential filter and asserts every counter exactly.
func TestStatsExactSequential(t *testing.T) {
	f := New(10_000)

	// 1000 distinct keys inserted: the filter is nearly empty, so every
	// insert takes the shortcut path.
	for i := uint64(0); i < 1000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	// 500 positive + 300 negative lookups: each is exactly one Lookup.
	for i := uint64(0); i < 500; i++ {
		if !f.ContainsUint64(i) {
			t.Fatalf("false negative on %d", i)
		}
	}
	for i := uint64(0); i < 300; i++ {
		f.ContainsUint64(1_000_000 + i)
	}
	// 200 removes of present keys, then 100 remove attempts of those same
	// (now absent, modulo collisions) keys.
	for i := uint64(0); i < 200; i++ {
		if !f.RemoveUint64(i) {
			t.Fatalf("remove of inserted key %d failed", i)
		}
	}
	misses := 0
	for i := uint64(0); i < 100; i++ {
		if !f.RemoveUint64(i) {
			misses++
		}
	}

	st := f.Stats()
	if st.Inserts != 1000 || st.InsertFailures != 0 {
		t.Fatalf("inserts %d (failures %d), want 1000 (0)", st.Inserts, st.InsertFailures)
	}
	if st.ShortcutInserts != 1000 {
		t.Fatalf("shortcut inserts %d, want 1000 (filter stays far below threshold)", st.ShortcutInserts)
	}
	if st.Lookups != 800 {
		t.Fatalf("lookups %d, want 800", st.Lookups)
	}
	wantRemoves := uint64(200 + (100 - misses))
	if st.Removes != wantRemoves || st.RemoveMisses != uint64(misses) {
		t.Fatalf("removes %d misses %d, want %d and %d", st.Removes, st.RemoveMisses, wantRemoves, misses)
	}
	if st.OptAttempts != 0 || st.OptRetries != 0 || st.OptFallbacks != 0 {
		t.Fatalf("sequential filter has optimistic counters: %+v", st)
	}
	if st.Inserts-st.Removes != f.Count() {
		t.Fatalf("inserts−removes = %d but Count() = %d", st.Inserts-st.Removes, f.Count())
	}
}

// TestStatsExactConcurrent runs a single-threaded script against the
// concurrent filter: with no contention possible, retries and fallbacks must
// be zero and attempts exactly accountable.
func TestStatsExactConcurrent(t *testing.T) {
	f := NewConcurrent(10_000)
	for i := uint64(0); i < 1000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	pos := 0
	for i := uint64(0); i < 400; i++ {
		if f.ContainsUint64(i) {
			pos++
		}
	}
	if pos != 400 {
		t.Fatalf("false negatives: %d/400", pos)
	}
	neg := uint64(300)
	for i := uint64(0); i < neg; i++ {
		f.ContainsUint64(2_000_000 + i)
	}

	st := f.Stats()
	if st.Inserts != 1000 || st.ShortcutInserts != 1000 || st.InsertFailures != 0 {
		t.Fatalf("insert counters: %+v", st)
	}
	if st.Lookups != 700 {
		t.Fatalf("lookups %d, want 700", st.Lookups)
	}
	if st.OptRetries != 0 || st.OptFallbacks != 0 {
		t.Fatalf("uncontended filter saw retries/fallbacks: %+v", st)
	}
	// Each shortcut insert probes occupancy optimistically once; each lookup
	// probes one or two blocks. Attempts must fall in [inserts+lookups,
	// inserts+2·lookups].
	lo, hi := st.Inserts+st.Lookups, st.Inserts+2*st.Lookups
	if st.OptAttempts < lo || st.OptAttempts > hi {
		t.Fatalf("optimistic attempts %d outside [%d, %d]", st.OptAttempts, lo, hi)
	}
}

func TestStatsBatchCounters(t *testing.T) {
	f := NewConcurrent(100_000)
	hs := make([]uint64, 5000)
	for i := range hs {
		hs[i] = (uint64(i) + 1) * 0x9e3779b97f4a7c15 // spread over blocks
	}
	cf, ok := f.impl.(interface {
		InsertBatch([]uint64) int
		ContainsBatch([]uint64, []bool) []bool
	})
	if !ok {
		t.Fatal("concurrent impl lacks batch API")
	}
	if n := cf.InsertBatch(hs); n != len(hs) {
		t.Fatalf("inserted %d/%d", n, len(hs))
	}
	cf.ContainsBatch(hs, nil)
	st := f.Stats()
	if st.BatchOps != 2 || st.BatchKeys != uint64(2*len(hs)) {
		t.Fatalf("batch counters: ops %d keys %d, want 2 and %d", st.BatchOps, st.BatchKeys, 2*len(hs))
	}
	if st.Inserts != uint64(len(hs)) {
		t.Fatalf("batch inserts folded into Inserts: %d want %d", st.Inserts, len(hs))
	}
	if st.Lookups != uint64(len(hs)) {
		t.Fatalf("batch lookups folded into Lookups: %d want %d", st.Lookups, len(hs))
	}
}

func TestSnapshotStructure(t *testing.T) {
	f := New(10_000)
	for i := uint64(0); i < 5000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Snapshot()
	if s.Count != 5000 || s.Capacity != f.Capacity() {
		t.Fatalf("count/capacity: %+v", s)
	}
	if s.LoadFactor != f.LoadFactor() {
		t.Fatalf("load factor %v vs %v", s.LoadFactor, f.LoadFactor())
	}
	if s.FPRFullLoad != f.FalsePositiveRate() {
		t.Fatalf("fpr %v vs %v", s.FPRFullLoad, f.FalsePositiveRate())
	}
	if s.Occupancy.SlotsPerBlock != minifilter.B8Slots {
		t.Fatalf("slots/block %d", s.Occupancy.SlotsPerBlock)
	}
	var blocks, items uint64
	for occ, n := range s.Occupancy.Histogram {
		blocks += n
		items += uint64(occ) * n
	}
	if blocks != s.Occupancy.Blocks || items != s.Count {
		t.Fatalf("histogram sums: %d blocks (want %d), %d items (want %d)",
			blocks, s.Occupancy.Blocks, items, s.Count)
	}
	if s.Ops.Inserts != 5000 {
		t.Fatalf("snapshot ops: %+v", s.Ops)
	}

	// The concurrent variant serves the same snapshot shape.
	cs := NewConcurrent(10_000)
	if err := cs.AddUint64(1); err != nil {
		t.Fatal(err)
	}
	snap := cs.Snapshot()
	if snap.Count != 1 || snap.Ops.Inserts != 1 {
		t.Fatalf("concurrent snapshot: %+v", snap)
	}
}

func TestMetricsHandler(t *testing.T) {
	f := New(10_000)
	for i := uint64(0); i < 100; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMap(1000)
	if err := m.PutHash(42, 7); err != nil {
		t.Fatal(err)
	}
	h := MetricsHandler(map[string]Source{"filter": f, "router": m})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	text := string(body)
	for _, want := range []string{
		`vqf_inserts_total{filter="filter"} 100`,
		`vqf_inserts_total{filter="router"} 1`,
		`vqf_items{filter="filter"} 100`,
		"# TYPE vqf_block_occupancy histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// HELP headers must not repeat per filter.
	if n := strings.Count(text, "# HELP vqf_inserts_total"); n != 1 {
		t.Fatalf("HELP emitted %d times", n)
	}
}

func TestPublishExpvar(t *testing.T) {
	f := New(1000)
	if err := f.AddUint64(7); err != nil {
		t.Fatal(err)
	}
	PublishExpvar("vqf_test_filter", f)
	v := expvar.Get("vqf_test_filter")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not snapshot JSON: %v", err)
	}
	if snap.Count != 1 || snap.Ops.Inserts != 1 {
		t.Fatalf("expvar snapshot: %+v", snap)
	}
	// Re-reads take fresh snapshots.
	if err := f.AddUint64(8); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 2 {
		t.Fatalf("expvar did not refresh: %+v", snap)
	}
}

func TestMapStats(t *testing.T) {
	m := NewMap(10_000)
	key := func(i int) string { return "key-" + strconv.Itoa(i) }
	for i := 0; i < 500; i++ {
		if err := m.PutString(key(i), byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, ok := m.GetString(key(i)); !ok {
			t.Fatalf("stored key %d missing", i)
		}
	}
	for i := 0; i < 50; i++ {
		if !m.UpdateString(key(i), 99) {
			t.Fatalf("update of stored key %d failed", i)
		}
	}
	deleted := uint64(0)
	for i := 0; i < 100; i++ {
		if m.Delete([]byte(key(i))) {
			deleted++
		}
	}
	st := m.Stats()
	if st.Inserts != 500 || st.Lookups != 250 || st.Removes != deleted {
		t.Fatalf("map counters: %+v (deleted %d)", st, deleted)
	}
	if m.LoadFactor() <= 0 || m.LoadFactor() != float64(m.Count())/float64(m.Capacity()) {
		t.Fatalf("load factor %v", m.LoadFactor())
	}
	snap := m.Snapshot()
	if snap.Count != m.Count() || snap.FPRFullLoad != m.FalsePositiveRate() {
		t.Fatalf("map snapshot: %+v", snap)
	}
}
